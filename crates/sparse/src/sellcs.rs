//! SELL-C-σ sliced-ELLPACK storage: the vector-friendly SpMV format.
//!
//! A [`SellMatrix`] stores a list of rows (the whole matrix, one rank's
//! owned range, or an interior/boundary subset) in chunks of `C` lanes.
//! Within every σ-row *window* the rows are stably sorted by descending
//! stored-entry count, so the lanes sharing a chunk have similar lengths
//! and the zero-padding overhead stays small. Slots are laid out
//! column-major within a chunk — slot `k` of all `C` lanes is contiguous —
//! which is the classic SELL-C-σ layout the autovectorizer can turn into
//! fixed-width vertical operations.
//!
//! # Bitwise determinism
//!
//! The accumulation **order per output row is exactly the CSR order**: a
//! row's entries occupy its lane's slots in ascending-column (CSR) order,
//! each lane accumulates into its own scalar, and padded slots are
//! *guarded, not multiplied* — a padded slot contributes nothing, rather
//! than adding `0.0 * x[c]` (which could flip a `-0.0` partial sum to
//! `+0.0`). Chunks whose lanes all have exactly the chunk width skip the
//! guard (there is no padding to guard against), which is the fast path σ
//! sorting is designed to produce. Consequently `SpMV(SELL) == SpMV(CSR)`
//! bit for bit, for any `C`, any σ, any thread count.
//!
//! Rows are sorted but *outputs are not*: every lane carries the output
//! position of its row, and the per-window output spans (windows partition
//! the original row list in order, and output positions are strictly
//! increasing) give the parallel backend worker-disjoint output slices.

use crate::csr::CsrMatrix;

/// Upper bound on the chunk height `C` (the generic kernel's accumulator
/// lives on the stack).
pub const MAX_SELL_C: usize = 16;

/// Lane marker for padded (non-existent) rows at the tail of the lane grid.
const NO_ROW: usize = usize::MAX;

/// A row list stored in SELL-C-σ layout. See the module docs.
#[derive(Debug, Clone)]
pub struct SellMatrix {
    ncols: usize,
    c: usize,
    /// Effective window size in rows (σ rounded up to a multiple of `C`).
    window: usize,
    /// Slot offset of each chunk (column-major slots; chunk `i` occupies
    /// `chunk_ptr[i]..chunk_ptr[i+1]`, which is `width_i * c` slots).
    chunk_ptr: Vec<usize>,
    /// `true` for chunks whose lanes all have exactly the chunk width —
    /// no padding, so the kernel can skip the per-slot guard.
    uniform: Vec<bool>,
    /// Slot column indices (padding slots hold 0, never read).
    cols: Vec<usize>,
    /// Slot values (padding slots hold 0.0, never read).
    vals: Vec<f64>,
    /// Stored-entry count per lane (`n_chunks * c`; padded lanes hold 0).
    lens: Vec<usize>,
    /// Output position per lane (`n_chunks * c`; padded lanes hold
    /// `usize::MAX`).
    out: Vec<usize>,
    /// Slot offset of each window (for nnz-balanced parallel splitting;
    /// `windows × slots`, monotone).
    win_slot_ptr: Vec<usize>,
    /// Output span `[lo, hi)` of each window: the parallel backend's
    /// worker-disjointness certificate.
    win_out: Vec<(usize, usize)>,
    nnz: usize,
}

impl SellMatrix {
    /// Converts a whole CSR matrix (output position = row index).
    ///
    /// # Panics
    /// See [`SellMatrix::from_rows`].
    pub fn from_csr(a: &CsrMatrix, c: usize, sigma: usize) -> Self {
        let rows: Vec<usize> = (0..a.nrows()).collect();
        Self::from_rows(a, &rows, &rows, c, sigma)
    }

    /// Converts the listed rows of `a`; `out[i]` is the output (`y`)
    /// position of `rows[i]`. Unlisted output positions are never touched
    /// by the SpMV kernels.
    ///
    /// # Panics
    /// Panics if `c` is 0 or exceeds [`MAX_SELL_C`], σ is 0, the lists
    /// differ in length, or `out` is not strictly increasing (the parallel
    /// backend's output disjointness depends on it).
    pub fn from_rows(a: &CsrMatrix, rows: &[usize], out: &[usize], c: usize, sigma: usize) -> Self {
        assert!(
            (1..=MAX_SELL_C).contains(&c),
            "sell: C must be in 1..={MAX_SELL_C}"
        );
        assert!(sigma >= 1, "sell: sigma must be positive");
        assert_eq!(rows.len(), out.len(), "sell: rows/out length mismatch");
        assert!(
            out.windows(2).all(|w| w[0] < w[1]),
            "sell: out positions must be strictly increasing"
        );
        let n = rows.len();
        let window = sigma.max(c).next_multiple_of(c);
        let n_windows = n.div_ceil(window);
        let n_chunks = n.div_ceil(c);

        // σ-sort: within each window, order the *list indices* by
        // descending stored-entry count, stably — ties keep list order.
        let mut order: Vec<usize> = (0..n).collect();
        for w in 0..n_windows {
            let lo = w * window;
            let hi = ((w + 1) * window).min(n);
            order[lo..hi].sort_by_key(|&i| std::cmp::Reverse(a.row_nnz(rows[i])));
        }

        let mut chunk_ptr = Vec::with_capacity(n_chunks + 1);
        let mut uniform = Vec::with_capacity(n_chunks);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        let mut lens = vec![0usize; n_chunks * c];
        let mut lane_row = vec![NO_ROW; n_chunks * c];
        chunk_ptr.push(0);
        for ch in 0..n_chunks {
            let lane0 = ch * c;
            let mut width = 0usize;
            for l in 0..c {
                if let Some(&i) = order.get(lane0 + l) {
                    let len = a.row_nnz(rows[i]);
                    lens[lane0 + l] = len;
                    lane_row[lane0 + l] = i;
                    width = width.max(len);
                }
            }
            let base = cols.len();
            cols.resize(base + width * c, 0);
            vals.resize(base + width * c, 0.0);
            for l in 0..c {
                if lane_row[lane0 + l] == NO_ROW {
                    continue;
                }
                let (rcols, rvals) = a.row(rows[lane_row[lane0 + l]]);
                for (k, (&col, &v)) in rcols.iter().zip(rvals.iter()).enumerate() {
                    cols[base + k * c + l] = col;
                    vals[base + k * c + l] = v;
                }
            }
            chunk_ptr.push(cols.len());
            uniform.push((0..c).all(|l| lens[lane0 + l] == width));
        }

        let out_lanes: Vec<usize> = lane_row
            .iter()
            .map(|&i| if i == NO_ROW { usize::MAX } else { out[i] })
            .collect();

        // Window accounting for the parallel backend: slot prefix (load
        // balance) and output spans (disjointness). Windows partition the
        // original list in order, so with strictly increasing `out` the
        // spans are disjoint and ascending.
        let wcc = window / c; // chunks per full window
        let mut win_slot_ptr = Vec::with_capacity(n_windows + 1);
        let mut win_out = Vec::with_capacity(n_windows);
        win_slot_ptr.push(0);
        for w in 0..n_windows {
            let ch_hi = ((w + 1) * wcc).min(n_chunks);
            win_slot_ptr.push(chunk_ptr[ch_hi]);
            let lo = w * window;
            let hi = ((w + 1) * window).min(n);
            win_out.push((out[lo], out[hi - 1] + 1));
        }

        SellMatrix {
            ncols: a.ncols(),
            c,
            window,
            chunk_ptr,
            uniform,
            cols,
            vals,
            lens,
            out: out_lanes,
            win_slot_ptr,
            win_out,
            nnz: rows.iter().map(|&r| a.row_nnz(r)).sum(),
        }
    }

    /// Chunk height `C`.
    pub fn c(&self) -> usize {
        self.c
    }

    /// Effective sort-window size in rows (σ rounded up to a multiple of
    /// `C`).
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of columns of the source matrix.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Stored (structural) entries — identical to the source rows' CSR nnz.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Allocated slots including zero padding (`≥ nnz`).
    pub fn n_slots(&self) -> usize {
        self.cols.len()
    }

    /// Number of `C`-lane chunks.
    pub fn n_chunks(&self) -> usize {
        self.chunk_ptr.len() - 1
    }

    /// Number of σ windows (the parallel split granularity).
    pub fn n_windows(&self) -> usize {
        self.win_out.len()
    }

    /// Window slot prefix — monotone, for nnz-balanced window splitting.
    pub(crate) fn win_slot_ptr(&self) -> &[usize] {
        &self.win_slot_ptr
    }

    /// Output span `[lo, hi)` of window `w`.
    pub(crate) fn win_out(&self, w: usize) -> (usize, usize) {
        self.win_out[w]
    }

    /// `(stored-entry count, output position)` of every lane, in lane
    /// order — the σ permutation record (padded lanes report
    /// `(0, usize::MAX)`).
    pub fn lanes(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.lens.iter().zip(self.out.iter()).map(|(&l, &o)| (l, o))
    }

    /// Scatters the stored entries into a dense `nrows × ncols` row-major
    /// buffer at their output positions — the round-trip check used by the
    /// conversion tests.
    pub fn to_dense(&self, nrows: usize) -> Vec<f64> {
        let mut dense = vec![0.0; nrows * self.ncols];
        for ch in 0..self.n_chunks() {
            let base = self.chunk_ptr[ch];
            let width = (self.chunk_ptr[ch + 1] - base) / self.c;
            for l in 0..self.c {
                let o = self.out[ch * self.c + l];
                if o == usize::MAX {
                    continue;
                }
                for k in 0..self.lens[ch * self.c + l] {
                    debug_assert!(k < width);
                    let col = self.cols[base + k * self.c + l];
                    dense[o * self.ncols + col] += self.vals[base + k * self.c + l];
                }
            }
        }
        dense
    }

    /// `y[out[lane]] = Σ` over the lanes of windows `[w_lo, w_hi)`, with
    /// `y` a slice whose index 0 corresponds to global output position
    /// `y_offset`. Sequential; the parallel backend calls this once per
    /// worker with window-aligned, output-disjoint slices.
    pub(crate) fn spmv_windows_into(
        &self,
        w_lo: usize,
        w_hi: usize,
        x: &[f64],
        y: &mut [f64],
        y_offset: usize,
    ) {
        let wcc = self.window / self.c;
        let ch_lo = w_lo * wcc;
        let ch_hi = (w_hi * wcc).min(self.n_chunks());
        match self.c {
            4 => self.spmv_chunks::<4>(ch_lo, ch_hi, x, y, y_offset),
            8 => self.spmv_chunks::<8>(ch_lo, ch_hi, x, y, y_offset),
            16 => self.spmv_chunks::<16>(ch_lo, ch_hi, x, y, y_offset),
            _ => self.spmv_chunks_generic(ch_lo, ch_hi, x, y, y_offset),
        }
    }

    /// `y[out[lane] ] = row · x` for every stored lane (whole-piece SpMV).
    ///
    /// # Panics
    /// Panics if `x.len() != ncols`.
    pub fn spmv_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "sell spmv: x length != ncols");
        self.spmv_windows_into(0, self.n_windows(), x, y, 0);
    }

    /// The fixed-width kernel: `C` is a compile-time constant so the inner
    /// loop over lanes has a known trip count.
    fn spmv_chunks<const C: usize>(
        &self,
        ch_lo: usize,
        ch_hi: usize,
        x: &[f64],
        y: &mut [f64],
        y_offset: usize,
    ) {
        debug_assert_eq!(self.c, C);
        for ch in ch_lo..ch_hi {
            let base = self.chunk_ptr[ch];
            let width = (self.chunk_ptr[ch + 1] - base) / C;
            let lane0 = ch * C;
            let mut acc = [0.0f64; C];
            if self.uniform[ch] {
                // No padding: every lane has exactly `width` entries, so
                // every slot is structural and the guard can go.
                for k in 0..width {
                    let s = base + k * C;
                    let (cols, vals) = (&self.cols[s..s + C], &self.vals[s..s + C]);
                    for l in 0..C {
                        acc[l] += vals[l] * x[cols[l]];
                    }
                }
            } else {
                // Guarded: a padded slot contributes nothing (adding its
                // `0.0 * x` product could flip a -0.0 partial sum).
                for k in 0..width {
                    let s = base + k * C;
                    let (cols, vals) = (&self.cols[s..s + C], &self.vals[s..s + C]);
                    for l in 0..C {
                        if k < self.lens[lane0 + l] {
                            acc[l] += vals[l] * x[cols[l]];
                        }
                    }
                }
            }
            for (l, &a) in acc.iter().enumerate() {
                let o = self.out[lane0 + l];
                if o != usize::MAX {
                    y[o - y_offset] = a;
                }
            }
        }
    }

    /// Runtime-`C` fallback for chunk heights without a specialization.
    fn spmv_chunks_generic(
        &self,
        ch_lo: usize,
        ch_hi: usize,
        x: &[f64],
        y: &mut [f64],
        y_offset: usize,
    ) {
        let c = self.c;
        for ch in ch_lo..ch_hi {
            let base = self.chunk_ptr[ch];
            let width = (self.chunk_ptr[ch + 1] - base) / c;
            let lane0 = ch * c;
            let mut acc = [0.0f64; MAX_SELL_C];
            if self.uniform[ch] {
                for k in 0..width {
                    let s = base + k * c;
                    for l in 0..c {
                        acc[l] += self.vals[s + l] * x[self.cols[s + l]];
                    }
                }
            } else {
                for k in 0..width {
                    let s = base + k * c;
                    for l in 0..c {
                        if k < self.lens[lane0 + l] {
                            acc[l] += self.vals[s + l] * x[self.cols[s + l]];
                        }
                    }
                }
            }
            for (l, &a) in acc.iter().enumerate().take(c) {
                let o = self.out[lane0 + l];
                if o != usize::MAX {
                    y[o - y_offset] = a;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{banded_spd, poisson2d};

    fn csr_dense(a: &CsrMatrix) -> Vec<f64> {
        let mut d = vec![0.0; a.nrows() * a.ncols()];
        for r in 0..a.nrows() {
            let (cols, vals) = a.row(r);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                d[r * a.ncols() + c] += v;
            }
        }
        d
    }

    #[test]
    fn round_trips_to_dense() {
        let a = banded_spd(97, 7, 0.5, 11);
        for (c, sigma) in [(4usize, 4usize), (8, 32), (3, 7), (16, 1)] {
            let s = SellMatrix::from_csr(&a, c, sigma);
            assert_eq!(s.to_dense(a.nrows()), csr_dense(&a), "C={c} sigma={sigma}");
            assert_eq!(s.nnz(), a.nnz());
            assert!(s.n_slots() >= s.nnz());
        }
    }

    #[test]
    fn sigma_sorting_permutes_within_windows_only() {
        let a = banded_spd(60, 9, 0.4, 5);
        let s = SellMatrix::from_csr(&a, 4, 16);
        assert_eq!(s.window(), 16);
        // Every lane's output lands inside its window's original row range,
        // and each window covers its rows exactly once.
        let mut seen = vec![false; a.nrows()];
        for (lane, (len, out)) in s.lanes().enumerate() {
            if out == usize::MAX {
                assert_eq!(len, 0);
                continue;
            }
            let window_of_lane = (lane / 4) / (16 / 4);
            assert_eq!(out / 16, window_of_lane, "lane {lane}");
            assert_eq!(len, a.row_nnz(out));
            assert!(!seen[out]);
            seen[out] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Within each chunk, lane lengths are descending across chunks of a
        // window: the first chunk of a window holds its longest rows.
        for w in 0..s.n_windows() {
            let lens: Vec<usize> = (w * 4..(w + 1) * 4)
                .flat_map(|ch| {
                    s.lanes()
                        .skip(ch * 4)
                        .take(4)
                        .map(|(l, _)| l)
                        .collect::<Vec<_>>()
                })
                .collect();
            assert!(
                lens.windows(2).all(|p| p[0] >= p[1]),
                "window {w}: {lens:?}"
            );
        }
    }

    #[test]
    fn spmv_is_bitwise_csr() {
        let a = poisson2d(23, 17);
        let x: Vec<f64> = (0..a.ncols())
            .map(|i| (i as f64 * 0.37).sin() - 0.5)
            .collect();
        let reference = a.spmv(&x);
        for (c, sigma) in [(4usize, 1usize), (8, 64), (5, 20), (16, 391)] {
            let s = SellMatrix::from_csr(&a, c, sigma);
            let mut y = vec![0.0; a.nrows()];
            s.spmv_into(&x, &mut y);
            for (i, (got, want)) in y.iter().zip(reference.iter()).enumerate() {
                assert_eq!(got.to_bits(), want.to_bits(), "row {i} C={c} sigma={sigma}");
            }
        }
    }

    #[test]
    fn subset_pieces_write_only_their_rows() {
        let a = banded_spd(80, 6, 0.6, 3);
        let rows: Vec<usize> = (0..80).filter(|r| r % 3 != 0).collect();
        let out = rows.clone();
        let s = SellMatrix::from_rows(&a, &rows, &out, 8, 24);
        let x: Vec<f64> = (0..80).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let mut y = vec![f64::NAN; 80];
        s.spmv_into(&x, &mut y);
        let reference = a.spmv(&x);
        for r in 0..80 {
            if r % 3 != 0 {
                assert_eq!(y[r].to_bits(), reference[r].to_bits(), "row {r}");
            } else {
                assert!(y[r].is_nan(), "unlisted row {r} must stay untouched");
            }
        }
    }

    #[test]
    fn empty_piece_is_a_no_op() {
        let a = poisson2d(5, 5);
        let s = SellMatrix::from_rows(&a, &[], &[], 8, 8);
        assert_eq!(s.nnz(), 0);
        assert_eq!(s.n_chunks(), 0);
        let x = vec![1.0; a.ncols()];
        let mut y = vec![7.0; a.nrows()];
        s.spmv_into(&x, &mut y);
        assert!(y.iter().all(|&v| v == 7.0));
    }

    #[test]
    fn padding_is_guarded_never_read() {
        // Rows of different lengths share a chunk, forcing padded slots
        // (which store column 0). No row actually touches column 0, so
        // poisoning x[0] with NaN proves the kernel never *reads* padding —
        // the guard, not a multiply-by-zero, is what keeps results bitwise
        // CSR.
        let a = CsrMatrix::from_dense(
            3,
            4,
            &[
                0.0, 1.0, 2.0, 3.0, // row 0: 3 entries
                0.0, 0.0, 5.0, 0.0, // row 1: 1 entry → 2 padded slots
                0.0, -1.0, 0.0, 4.0, // row 2: 2 entries
            ],
        );
        let s = SellMatrix::from_csr(&a, 2, 4);
        let x = vec![f64::NAN, -1.0, 2.0, -3.0];
        let mut y = vec![0.0; 3];
        s.spmv_into(&x, &mut y);
        for (r, &got) in y.iter().enumerate() {
            let (cols, vals) = a.row(r);
            let mut want = 0.0;
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                want += v * x[c];
            }
            assert!(!got.is_nan(), "row {r} read a padded slot");
            assert_eq!(got.to_bits(), want.to_bits(), "row {r}");
        }
    }
}
