//! Error type shared by the sparse linear algebra substrate.

use std::fmt;

/// Errors produced by matrix construction, factorization, and I/O.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseError {
    /// An entry's row or column index is outside the matrix dimensions.
    IndexOutOfBounds {
        row: usize,
        col: usize,
        nrows: usize,
        ncols: usize,
    },
    /// A CSR invariant is violated (row pointers not monotone, lengths
    /// inconsistent, column indices unsorted or out of range).
    InvalidCsr(String),
    /// The matrix is not (numerically) symmetric where symmetry is required.
    NotSymmetric { row: usize, col: usize, diff: f64 },
    /// Cholesky factorization hit a non-positive pivot: the matrix is not
    /// positive definite (or is ill-conditioned beyond `f64`).
    NotPositiveDefinite { pivot_index: usize, pivot: f64 },
    /// A dimension mismatch between operands (e.g. SpMV with a wrong-length
    /// vector).
    DimensionMismatch { expected: usize, found: usize },
    /// Matrix Market parse failure with a line number and message.
    MatrixMarket { line: usize, msg: String },
    /// Underlying I/O error (stringified so the error type stays `Clone`).
    Io(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds {
                row,
                col,
                nrows,
                ncols,
            } => write!(
                f,
                "entry ({row}, {col}) outside matrix dimensions {nrows}x{ncols}"
            ),
            SparseError::InvalidCsr(msg) => write!(f, "invalid CSR structure: {msg}"),
            SparseError::NotSymmetric { row, col, diff } => write!(
                f,
                "matrix not symmetric: |A[{row},{col}] - A[{col},{row}]| = {diff:e}"
            ),
            SparseError::NotPositiveDefinite { pivot_index, pivot } => write!(
                f,
                "matrix not positive definite: pivot {pivot_index} = {pivot:e}"
            ),
            SparseError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            SparseError::MatrixMarket { line, msg } => {
                write!(f, "Matrix Market parse error at line {line}: {msg}")
            }
            SparseError::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_data() {
        let e = SparseError::IndexOutOfBounds {
            row: 3,
            col: 7,
            nrows: 2,
            ncols: 2,
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('7') && s.contains("2x2"));

        let e = SparseError::NotPositiveDefinite {
            pivot_index: 5,
            pivot: -1.0,
        };
        assert!(e.to_string().contains("pivot 5"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: SparseError = io.into();
        assert!(matches!(e, SparseError::Io(_)));
        assert!(e.to_string().contains("gone"));
    }
}
