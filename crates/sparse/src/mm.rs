//! Matrix Market I/O (coordinate format).
//!
//! The paper's test matrices (`Emilia_923`, `audikw_1`) come from the
//! SuiteSparse collection in Matrix Market format. This reader/writer lets
//! the benchmark harness run on the genuine matrices when a copy is
//! available; the repository itself ships synthetic substitutes (see
//! [`crate::gen`] and `DESIGN.md` §4).
//!
//! Supported: `matrix coordinate real {general|symmetric}` and
//! `matrix coordinate pattern {general|symmetric}` (pattern entries get
//! value 1.0). Symmetric files store the lower triangle; the reader mirrors
//! off-diagonal entries.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::error::SparseError;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Real,
    Pattern,
}

fn parse_header(line: &str) -> Result<(Field, Symmetry), SparseError> {
    let err = |msg: &str| SparseError::MatrixMarket {
        line: 1,
        msg: msg.to_string(),
    };
    let lower = line.to_ascii_lowercase();
    let tokens: Vec<&str> = lower.split_whitespace().collect();
    if tokens.len() < 5 || tokens[0] != "%%matrixmarket" {
        return Err(err("missing %%MatrixMarket header"));
    }
    if tokens[1] != "matrix" || tokens[2] != "coordinate" {
        return Err(err("only 'matrix coordinate' objects are supported"));
    }
    let field = match tokens[3] {
        "real" | "integer" => Field::Real,
        "pattern" => Field::Pattern,
        other => return Err(err(&format!("unsupported field '{other}'"))),
    };
    let sym = match tokens[4] {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        other => return Err(err(&format!("unsupported symmetry '{other}'"))),
    };
    Ok((field, sym))
}

/// Reads a Matrix Market coordinate file from any reader.
///
/// # Errors
/// Returns [`SparseError::MatrixMarket`] on malformed input or
/// [`SparseError::Io`] on read failure.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<CsrMatrix, SparseError> {
    let buf = BufReader::new(reader);
    let mut lines = buf.lines().enumerate();

    let (_, first) = lines.next().ok_or_else(|| SparseError::MatrixMarket {
        line: 1,
        msg: "empty file".into(),
    })?;
    let (field, sym) = parse_header(&first?)?;

    // Skip comment lines, find the size line.
    let mut size_line = None;
    let mut size_line_no = 0usize;
    for (no, line) in lines.by_ref() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        size_line = Some(trimmed.to_string());
        size_line_no = no + 1;
        break;
    }
    let size_line = size_line.ok_or_else(|| SparseError::MatrixMarket {
        line: size_line_no,
        msg: "missing size line".into(),
    })?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|e| SparseError::MatrixMarket {
            line: size_line_no,
            msg: format!("bad size line: {e}"),
        })?;
    if dims.len() != 3 {
        return Err(SparseError::MatrixMarket {
            line: size_line_no,
            msg: format!("size line must have 3 fields, found {}", dims.len()),
        });
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    let cap = if sym == Symmetry::Symmetric {
        2 * nnz
    } else {
        nnz
    };
    let mut coo = CooMatrix::with_capacity(nrows, ncols, cap);
    let mut seen = 0usize;
    for (no, line) in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse_idx = |tok: Option<&str>| -> Result<usize, SparseError> {
            tok.ok_or(())
                .and_then(|t| t.parse::<usize>().map_err(|_| ()))
                .map_err(|_| SparseError::MatrixMarket {
                    line: no + 1,
                    msg: "bad entry line".into(),
                })
        };
        let r = parse_idx(it.next())?;
        let c = parse_idx(it.next())?;
        if r == 0 || c == 0 {
            return Err(SparseError::MatrixMarket {
                line: no + 1,
                msg: "Matrix Market indices are 1-based; found 0".into(),
            });
        }
        let v = match field {
            Field::Pattern => 1.0,
            Field::Real => it
                .next()
                .ok_or(())
                .and_then(|t| t.parse::<f64>().map_err(|_| ()))
                .map_err(|_| SparseError::MatrixMarket {
                    line: no + 1,
                    msg: "missing or bad value".into(),
                })?,
        };
        let (r0, c0) = (r - 1, c - 1);
        coo.push(r0, c0, v)?;
        if sym == Symmetry::Symmetric && r0 != c0 {
            coo.push(c0, r0, v)?;
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(SparseError::MatrixMarket {
            line: 0,
            msg: format!("expected {nnz} entries, found {seen}"),
        });
    }
    Ok(CsrMatrix::from_coo(coo))
}

/// Reads a Matrix Market file from disk.
///
/// # Errors
/// See [`read_matrix_market`].
pub fn read_matrix_market_file<P: AsRef<Path>>(path: P) -> Result<CsrMatrix, SparseError> {
    let f = std::fs::File::open(path)?;
    read_matrix_market(f)
}

/// Writes a matrix in `coordinate real general` format (all stored entries,
/// 1-based indices).
///
/// # Errors
/// Returns [`SparseError::Io`] on write failure.
pub fn write_matrix_market<W: Write>(a: &CsrMatrix, writer: W) -> Result<(), SparseError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by esrcg-sparse")?;
    writeln!(w, "{} {} {}", a.nrows(), a.ncols(), a.nnz())?;
    for r in 0..a.nrows() {
        let (cols, vals) = a.row(r);
        for (&c, &v) in cols.iter().zip(vals.iter()) {
            writeln!(w, "{} {} {:.17e}", r + 1, c + 1, v)?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Writes a matrix to a Matrix Market file on disk.
///
/// # Errors
/// See [`write_matrix_market`].
pub fn write_matrix_market_file<P: AsRef<Path>>(a: &CsrMatrix, path: P) -> Result<(), SparseError> {
    let f = std::fs::File::create(path)?;
    write_matrix_market(a, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_general_real() {
        let input = "%%MatrixMarket matrix coordinate real general\n\
                     % a comment\n\
                     2 3 3\n\
                     1 1 1.5\n\
                     2 3 -2.0\n\
                     1 2 4.0\n";
        let a = read_matrix_market(input.as_bytes()).unwrap();
        assert_eq!(a.nrows(), 2);
        assert_eq!(a.ncols(), 3);
        assert_eq!(a.get(0, 0), 1.5);
        assert_eq!(a.get(0, 1), 4.0);
        assert_eq!(a.get(1, 2), -2.0);
    }

    #[test]
    fn reads_symmetric_and_mirrors() {
        let input = "%%MatrixMarket matrix coordinate real symmetric\n\
                     3 3 3\n\
                     1 1 2.0\n\
                     2 1 -1.0\n\
                     3 3 5.0\n";
        let a = read_matrix_market(input.as_bytes()).unwrap();
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.get(1, 0), -1.0);
        assert_eq!(a.nnz(), 4);
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn reads_pattern() {
        let input = "%%MatrixMarket matrix coordinate pattern general\n\
                     2 2 2\n\
                     1 1\n\
                     2 2\n";
        let a = read_matrix_market(input.as_bytes()).unwrap();
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(1, 1), 1.0);
    }

    #[test]
    fn rejects_bad_header() {
        let input = "%%MatrixMarket matrix array real general\n1 1\n1.0\n";
        assert!(read_matrix_market(input.as_bytes()).is_err());
        let input = "not a header\n";
        assert!(read_matrix_market(input.as_bytes()).is_err());
    }

    #[test]
    fn rejects_wrong_entry_count() {
        let input = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        let err = read_matrix_market(input.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected 2 entries"));
    }

    #[test]
    fn rejects_zero_based_indices() {
        let input = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(read_matrix_market(input.as_bytes()).is_err());
    }

    #[test]
    fn round_trips_through_write() {
        let a = CsrMatrix::from_dense(3, 3, &[4.0, -1.0, 0.0, -1.0, 4.0, -1.0, 0.0, -1.0, 4.0]);
        let mut buf = Vec::new();
        write_matrix_market(&a, &mut buf).unwrap();
        let b = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn file_round_trip() {
        let a = CsrMatrix::identity(4);
        let dir = std::env::temp_dir().join("esrcg_mm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("id4.mtx");
        write_matrix_market_file(&a, &path).unwrap();
        let b = read_matrix_market_file(&path).unwrap();
        assert_eq!(a, b);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_case_insensitive() {
        let input = "%%MATRIXMARKET MATRIX COORDINATE REAL GENERAL\n1 1 1\n1 1 3.0\n";
        let a = read_matrix_market(input.as_bytes()).unwrap();
        assert_eq!(a.get(0, 0), 3.0);
    }
}
