//! Interior/boundary row classification for the split-phase distributed
//! SpMV.
//!
//! A row owned by a rank is *interior* when every column it touches lies in
//! the rank's own index range — its output depends on the local vector
//! chunk alone and can be computed while the halo exchange is still in
//! flight. The remaining *boundary* rows read received halo entries and
//! must wait for the exchange to finish. [`RowSplit`] classifies one row
//! range; [`RowSplitSet`] caches the classification for every rank of a
//! [`Partition`], built once per matrix + partition exactly like the
//! communication plan it complements.
//!
//! Splitting changes nothing about the arithmetic: each row is still one
//! sequential accumulation over ascending columns, so
//! interior-then-boundary via
//! [`crate::KernelBackend::spmv_rows_subset_into`] is **bitwise
//! identical** to the blocking [`crate::KernelBackend::spmv_rows_into`]
//! over the whole range.

use std::ops::Range;

use crate::csr::CsrMatrix;
use crate::partition::Partition;

/// One contiguous row range classified into interior and boundary rows
/// with respect to an owned column range.
#[derive(Debug, Clone)]
pub struct RowSplit {
    rows: Range<usize>,
    /// Global indices of rows whose columns all lie in the owned range
    /// (strictly increasing).
    interior: Vec<usize>,
    /// Global indices of rows touching at least one foreign column
    /// (strictly increasing).
    boundary: Vec<usize>,
    interior_flops: u64,
    boundary_flops: u64,
}

impl RowSplit {
    /// Classifies each row in `rows` of `a`: *interior* iff every stored
    /// column lies in `owned_cols` (an empty row is interior — it reads
    /// nothing).
    ///
    /// # Panics
    /// Panics if `rows` exceeds the matrix dimensions.
    pub fn build(a: &CsrMatrix, rows: Range<usize>, owned_cols: Range<usize>) -> Self {
        assert!(rows.end <= a.nrows(), "row split: row range out of range");
        let mut interior = Vec::new();
        let mut boundary = Vec::new();
        let (mut interior_flops, mut boundary_flops) = (0u64, 0u64);
        for r in rows.clone() {
            let (cols, _) = a.row(r);
            // Columns are strictly increasing, so the endpoints decide.
            let is_interior = match (cols.first(), cols.last()) {
                (Some(lo), Some(hi)) => owned_cols.contains(lo) && owned_cols.contains(hi),
                _ => true,
            };
            let flops = 2 * cols.len() as u64;
            if is_interior {
                interior.push(r);
                interior_flops += flops;
            } else {
                boundary.push(r);
                boundary_flops += flops;
            }
        }
        RowSplit {
            rows,
            interior,
            boundary,
            interior_flops,
            boundary_flops,
        }
    }

    /// The classified row range.
    pub fn rows(&self) -> Range<usize> {
        self.rows.clone()
    }

    /// Interior rows (global indices, strictly increasing).
    pub fn interior(&self) -> &[usize] {
        &self.interior
    }

    /// Boundary rows (global indices, strictly increasing).
    pub fn boundary(&self) -> &[usize] {
        &self.boundary
    }

    /// SpMV flops of the interior rows (2 per stored entry).
    pub fn interior_flops(&self) -> u64 {
        self.interior_flops
    }

    /// SpMV flops of the boundary rows.
    pub fn boundary_flops(&self) -> u64 {
        self.boundary_flops
    }
}

/// Per-rank [`RowSplit`]s of a block-row distributed square matrix — the
/// cached companion of a communication plan.
#[derive(Debug, Clone)]
pub struct RowSplitSet {
    splits: Vec<RowSplit>,
}

impl RowSplitSet {
    /// Classifies every rank's rows of `a` under `partition` (owned columns
    /// = owned rows, the block-row distribution of the paper).
    ///
    /// # Panics
    /// Panics if the partition does not cover a square matrix.
    pub fn build(a: &CsrMatrix, partition: &Partition) -> Self {
        assert_eq!(partition.n(), a.nrows(), "partition must cover all rows");
        assert_eq!(a.nrows(), a.ncols(), "row split needs a square matrix");
        let splits = partition
            .iter()
            .map(|(_, range)| RowSplit::build(a, range.clone(), range))
            .collect();
        RowSplitSet { splits }
    }

    /// Number of ranks.
    pub fn n_ranks(&self) -> usize {
        self.splits.len()
    }

    /// The split of `rank`'s rows.
    pub fn of(&self, rank: usize) -> &RowSplit {
        &self.splits[rank]
    }

    /// Total interior rows across all ranks.
    pub fn total_interior(&self) -> usize {
        self.splits.iter().map(|s| s.interior.len()).sum()
    }

    /// Total boundary rows across all ranks.
    pub fn total_boundary(&self) -> usize {
        self.splits.iter().map(|s| s.boundary.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{banded_spd, poisson1d, poisson2d};
    use crate::KernelBackend;

    #[test]
    fn classification_matches_brute_force() {
        let a = banded_spd(60, 7, 0.6, 5);
        let part = Partition::balanced(60, 5);
        let set = RowSplitSet::build(&a, &part);
        assert_eq!(set.n_ranks(), 5);
        for (s, range) in part.iter() {
            let split = set.of(s);
            assert_eq!(split.rows(), range);
            for r in range.clone() {
                let (cols, _) = a.row(r);
                let interior = cols.iter().all(|c| range.contains(c));
                assert_eq!(split.interior().contains(&r), interior, "rank {s} row {r}");
                assert_eq!(split.boundary().contains(&r), !interior);
            }
            // Flops partition the range's flops exactly.
            assert_eq!(
                split.interior_flops() + split.boundary_flops(),
                a.spmv_rows_flops(range)
            );
            assert_eq!(
                split.interior_flops(),
                a.spmv_rows_list_flops(split.interior())
            );
        }
        assert_eq!(set.total_interior() + set.total_boundary(), 60);
    }

    #[test]
    fn tridiagonal_boundary_is_the_block_edges() {
        // poisson1d over equal blocks: exactly the first and last row of
        // every interior block touch a neighbor.
        let a = poisson1d(12);
        let part = Partition::balanced(12, 3);
        let set = RowSplitSet::build(&a, &part);
        assert_eq!(set.of(0).boundary(), &[3]);
        assert_eq!(set.of(1).boundary(), &[4, 7]);
        assert_eq!(set.of(2).boundary(), &[8]);
        assert_eq!(set.of(0).interior(), &[0, 1, 2]);
    }

    #[test]
    fn block_diagonal_matrix_is_all_interior() {
        let a = CsrMatrix::identity(20);
        let part = Partition::balanced(20, 4);
        let set = RowSplitSet::build(&a, &part);
        assert_eq!(set.total_boundary(), 0);
        assert_eq!(set.total_interior(), 20);
        for s in 0..4 {
            assert!(set.of(s).boundary().is_empty());
            assert_eq!(set.of(s).boundary_flops(), 0);
        }
    }

    #[test]
    fn single_rank_is_all_interior_and_empty_ranks_split_empty() {
        let a = poisson2d(5, 5);
        let single = RowSplitSet::build(&a, &Partition::balanced(25, 1));
        assert_eq!(single.of(0).interior().len(), 25);
        assert!(single.of(0).boundary().is_empty());
        // More ranks than rows: trailing ranks own nothing.
        let b = poisson1d(3);
        let many = RowSplitSet::build(&b, &Partition::balanced(3, 5));
        for s in 3..5 {
            assert!(many.of(s).interior().is_empty());
            assert!(many.of(s).boundary().is_empty());
            assert_eq!(many.of(s).rows().len(), 0);
        }
    }

    #[test]
    fn interior_then_boundary_reproduces_blocking_spmv_bitwise() {
        let a = poisson2d(9, 9);
        let n = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).sin()).collect();
        for n_ranks in [1usize, 2, 3, 5] {
            let part = Partition::balanced(n, n_ranks);
            let set = RowSplitSet::build(&a, &part);
            for be in [KernelBackend::Sequential, KernelBackend::parallel(4)] {
                for (s, range) in part.iter() {
                    let mut blocking = vec![0.0; range.len()];
                    be.spmv_rows_into(&a, range.clone(), &x, &mut blocking);
                    let split = set.of(s);
                    let mut y = vec![0.0; range.len()];
                    be.spmv_rows_subset_into(&a, split.interior(), range.start, &x, &mut y);
                    be.spmv_rows_subset_into(&a, split.boundary(), range.start, &x, &mut y);
                    assert_eq!(y, blocking, "rank {s} of {n_ranks}, {}", be.name());
                }
            }
        }
    }
}
