//! Compressed sparse row (CSR) matrices and the kernels used by the resilient
//! PCG solver.
//!
//! Beyond the usual SpMV, this module provides the operations the exact state
//! reconstruction (ESR) recovery path needs:
//!
//! * [`CsrMatrix::extract_rows`] — the rows `A[I_f, :]` owned by failed ranks
//!   (column indices stay global),
//! * [`CsrMatrix::principal_submatrix`] — the inner-system matrix `A[I_f, I_f]`
//!   with columns remapped to local indices,
//! * [`CsrMatrix::spmv_rows_masked`] — the off-diagonal product
//!   `A[I_f, I\I_f] · x[I\I_f]` used to form the inner right-hand sides.

use crate::coo::CooMatrix;
use crate::error::SparseError;

/// A sparse matrix in compressed sparse row format.
///
/// Invariants (checked by [`CsrMatrix::validate`], maintained by all
/// constructors): `row_ptr` has length `nrows + 1`, is non-decreasing, starts
/// at 0 and ends at `nnz`; within each row, column indices are strictly
/// increasing and `< ncols`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from a COO builder, sorting entries and summing
    /// duplicates.
    pub fn from_coo(coo: CooMatrix) -> Self {
        let nrows = coo.nrows();
        let ncols = coo.ncols();
        let (row_ptr, col_idx, values) = coo.into_csr_arrays();
        CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Builds a CSR matrix from raw arrays, validating all invariants.
    ///
    /// # Errors
    /// Returns [`SparseError::InvalidCsr`] if any invariant is violated.
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self, SparseError> {
        let m = CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        };
        m.validate()?;
        Ok(m)
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Builds from a dense row-major array (test helper; zeros are dropped).
    pub fn from_dense(nrows: usize, ncols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), nrows * ncols, "from_dense: data length");
        let mut coo = CooMatrix::new(nrows, ncols);
        for r in 0..nrows {
            for c in 0..ncols {
                let v = data[r * ncols + c];
                if v != 0.0 {
                    coo.push(r, c, v).expect("in-range by construction");
                }
            }
        }
        CsrMatrix::from_coo(coo)
    }

    /// Checks all structural invariants.
    ///
    /// # Errors
    /// Returns [`SparseError::InvalidCsr`] describing the first violation.
    pub fn validate(&self) -> Result<(), SparseError> {
        if self.row_ptr.len() != self.nrows + 1 {
            return Err(SparseError::InvalidCsr(format!(
                "row_ptr length {} != nrows + 1 = {}",
                self.row_ptr.len(),
                self.nrows + 1
            )));
        }
        if self.row_ptr[0] != 0 {
            return Err(SparseError::InvalidCsr("row_ptr[0] != 0".into()));
        }
        if *self.row_ptr.last().expect("non-empty by check above") != self.col_idx.len() {
            return Err(SparseError::InvalidCsr(
                "row_ptr does not end at nnz".into(),
            ));
        }
        if self.col_idx.len() != self.values.len() {
            return Err(SparseError::InvalidCsr(
                "col_idx and values lengths differ".into(),
            ));
        }
        for r in 0..self.nrows {
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            if lo > hi {
                return Err(SparseError::InvalidCsr(format!(
                    "row_ptr decreasing at row {r}"
                )));
            }
            let mut prev: Option<usize> = None;
            for &c in &self.col_idx[lo..hi] {
                if c >= self.ncols {
                    return Err(SparseError::InvalidCsr(format!(
                        "column {c} out of range in row {r}"
                    )));
                }
                if let Some(p) = prev {
                    if c <= p {
                        return Err(SparseError::InvalidCsr(format!(
                            "columns not strictly increasing in row {r}"
                        )));
                    }
                }
                prev = Some(c);
            }
        }
        Ok(())
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Row pointer array (length `nrows + 1`).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column index array (length `nnz`).
    #[inline]
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Value array (length `nnz`).
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Columns and values of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[usize], &[f64]) {
        let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Number of stored entries in row `r`.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Value at `(r, c)`, or 0.0 if not stored. Binary searches the row.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let (cols, vals) = self.row(r);
        match cols.binary_search(&c) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// `y = A x`.
    ///
    /// # Panics
    /// Panics if `x.len() != ncols`.
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.nrows];
        self.spmv_into(x, &mut y);
        y
    }

    /// `y ← A x` into a caller-provided buffer.
    ///
    /// # Panics
    /// Panics if `x.len() != ncols` or `y.len() != nrows`.
    pub fn spmv_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "spmv: x length != ncols");
        assert_eq!(y.len(), self.nrows, "spmv: y length != nrows");
        #[allow(clippy::needless_range_loop)]
        for r in 0..self.nrows {
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            y[r] = acc;
        }
    }

    /// Computes `y[i - rows.start] = Σ_k A[i, k] x[k]` for `i` in `rows` —
    /// the node-local part of a distributed SpMV, where `x` is a full-length
    /// gathered input vector.
    ///
    /// # Panics
    /// Panics on dimension mismatches or an out-of-range row range.
    pub fn spmv_rows_into(&self, rows: std::ops::Range<usize>, x: &[f64], y: &mut [f64]) {
        assert!(rows.end <= self.nrows, "spmv_rows: row range out of range");
        assert_eq!(x.len(), self.ncols, "spmv_rows: x length != ncols");
        assert_eq!(y.len(), rows.len(), "spmv_rows: y length != rows.len()");
        for (out, r) in y.iter_mut().zip(rows) {
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *out = acc;
        }
    }

    /// Computes `y[i - offset] = Σ_k A[i, k] x[k]` for each global row `i`
    /// in `rows` (a strictly increasing list), scattering into `y` at the
    /// same positions a full [`CsrMatrix::spmv_rows_into`] over
    /// `offset..offset + y.len()` would use. This is the subset kernel of
    /// the split-phase distributed SpMV: interior rows run while the halo
    /// is in flight, boundary rows afterwards, and together they write
    /// exactly the output of the blocking kernel — bit for bit, since each
    /// row is the same sequential accumulation.
    ///
    /// Entries of `y` whose rows are not listed keep their previous
    /// contents.
    ///
    /// # Panics
    /// Panics on dimension mismatches or rows that do not map into `y`.
    pub fn spmv_rows_subset_into(&self, rows: &[usize], offset: usize, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "spmv_rows_subset: x length != ncols");
        debug_assert!(
            rows.windows(2).all(|w| w[0] < w[1]),
            "spmv_rows_subset: rows must be strictly increasing"
        );
        for &r in rows {
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            y[r - offset] = acc;
        }
    }

    /// For each row `i` in `rows` (a sorted list of global row indices),
    /// computes `Σ_{k ∉ masked} A[i, k] x_full[k]` — the off-diagonal product
    /// `A[I_f, I\I_f] x[I\I_f]` from Alg. 2 of the paper, where `masked`
    /// answers "is this column in `I_f`?".
    ///
    /// `x_full` must be a full-length vector whose entries outside the mask
    /// are meaningful (masked entries are never read).
    pub fn spmv_rows_masked(
        &self,
        rows: &[usize],
        x_full: &[f64],
        masked: impl Fn(usize) -> bool,
    ) -> Vec<f64> {
        let mut y = vec![0.0; rows.len()];
        self.spmv_rows_masked_into(rows, x_full, masked, &mut y);
        y
    }

    /// Allocation-free variant of [`CsrMatrix::spmv_rows_masked`]: writes the
    /// masked products into a caller-provided buffer.
    ///
    /// # Panics
    /// Panics if `x_full.len() != ncols` or `y.len() != rows.len()`.
    pub fn spmv_rows_masked_into(
        &self,
        rows: &[usize],
        x_full: &[f64],
        masked: impl Fn(usize) -> bool,
        y: &mut [f64],
    ) {
        assert_eq!(x_full.len(), self.ncols, "spmv_rows_masked: x length");
        assert_eq!(y.len(), rows.len(), "spmv_rows_masked: y length");
        for (out, &r) in y.iter_mut().zip(rows.iter()) {
            let (cols, vals) = self.row(r);
            let mut acc = 0.0;
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                if !masked(c) {
                    acc += v * x_full[c];
                }
            }
            *out = acc;
        }
    }

    /// Extracts the rows `rows` restricted to the columns selected by
    /// `keep`, as a `rows.len() × ncols` matrix with **global** column
    /// indices. Entry order within a row is preserved, so an SpMV with the
    /// result accumulates in exactly the same order as a masked SpMV with
    /// `masked = |c| !keep(c)` — bitwise identical, but without the
    /// per-entry branch. The recovery path builds these once per failure
    /// domain and reuses them across all inner iterations.
    pub fn extract_rows_filtered(&self, rows: &[usize], keep: impl Fn(usize) -> bool) -> CsrMatrix {
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        row_ptr.push(0);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for &r in rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                if keep(c) {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            nrows: rows.len(),
            ncols: self.ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Extracts the rows `rows` (sorted global indices) as a new
    /// `rows.len() × ncols` matrix; column indices stay global.
    pub fn extract_rows(&self, rows: &[usize]) -> CsrMatrix {
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        row_ptr.push(0);
        let nnz: usize = rows.iter().map(|&r| self.row_nnz(r)).sum();
        let mut col_idx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        for &r in rows {
            let (cols, vals) = self.row(r);
            col_idx.extend_from_slice(cols);
            values.extend_from_slice(vals);
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            nrows: rows.len(),
            ncols: self.ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Extracts the principal submatrix `A[idx, idx]` with rows *and* columns
    /// remapped to local indices `0..idx.len()`. `idx` must be sorted and
    /// duplicate-free; this is the inner-system matrix `A[I_f, I_f]` of the
    /// ESR reconstruction (Alg. 2, line 8).
    ///
    /// # Panics
    /// Panics (debug assertion) if `idx` is not strictly increasing.
    pub fn principal_submatrix(&self, idx: &[usize]) -> CsrMatrix {
        debug_assert!(
            idx.windows(2).all(|w| w[0] < w[1]),
            "principal_submatrix: idx must be strictly increasing"
        );
        // Global-to-local column map. A hash map would work; a direct lookup
        // table is faster and the memory (ncols usizes) is transient.
        const ABSENT: usize = usize::MAX;
        let mut g2l = vec![ABSENT; self.ncols];
        for (local, &g) in idx.iter().enumerate() {
            g2l[g] = local;
        }
        let mut row_ptr = Vec::with_capacity(idx.len() + 1);
        row_ptr.push(0);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for &r in idx {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                let lc = g2l[c];
                if lc != ABSENT {
                    col_idx.push(lc);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            nrows: idx.len(),
            ncols: idx.len(),
            row_ptr,
            col_idx,
            values,
        }
    }

    /// The main diagonal as a dense vector (missing entries are 0.0). Only
    /// meaningful for square matrices.
    pub fn diag(&self) -> Vec<f64> {
        let n = self.nrows.min(self.ncols);
        (0..n).map(|i| self.get(i, i)).collect()
    }

    /// Transpose (exact, re-sorted CSR).
    pub fn transpose(&self) -> CsrMatrix {
        let mut row_ptr = vec![0usize; self.ncols + 1];
        for &c in &self.col_idx {
            row_ptr[c + 1] += 1;
        }
        for i in 0..self.ncols {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = row_ptr.clone();
        for r in 0..self.nrows {
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            for k in lo..hi {
                let c = self.col_idx[k];
                let pos = next[c];
                col_idx[pos] = r;
                values[pos] = self.values[k];
                next[c] += 1;
            }
        }
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Checks numeric symmetry to absolute tolerance `tol`.
    ///
    /// # Errors
    /// Returns [`SparseError::NotSymmetric`] with the first offending pair,
    /// or [`SparseError::DimensionMismatch`] if not square.
    pub fn check_symmetric(&self, tol: f64) -> Result<(), SparseError> {
        if self.nrows != self.ncols {
            return Err(SparseError::DimensionMismatch {
                expected: self.nrows,
                found: self.ncols,
            });
        }
        let t = self.transpose();
        for r in 0..self.nrows {
            let (ca, va) = self.row(r);
            let (cb, vb) = t.row(r);
            // Merge-compare the two sorted rows.
            let (mut i, mut j) = (0usize, 0usize);
            while i < ca.len() || j < cb.len() {
                let (c, d) = match (ca.get(i), cb.get(j)) {
                    (Some(&x), Some(&y)) if x == y => {
                        let d = (va[i] - vb[j]).abs();
                        i += 1;
                        j += 1;
                        (x, d)
                    }
                    (Some(&x), Some(&y)) if x < y => {
                        let d = va[i].abs();
                        i += 1;
                        (x, d)
                    }
                    (Some(_), Some(&y)) => {
                        let d = vb[j].abs();
                        j += 1;
                        (y, d)
                    }
                    (Some(&x), None) => {
                        let d = va[i].abs();
                        i += 1;
                        (x, d)
                    }
                    (None, Some(&y)) => {
                        let d = vb[j].abs();
                        j += 1;
                        (y, d)
                    }
                    (None, None) => unreachable!("loop condition"),
                };
                if d > tol {
                    return Err(SparseError::NotSymmetric {
                        row: r,
                        col: c,
                        diff: d,
                    });
                }
            }
        }
        Ok(())
    }

    /// True if [`CsrMatrix::check_symmetric`] passes at tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        self.check_symmetric(tol).is_ok()
    }

    /// Matrix bandwidth: `max_i max_{j: a_ij ≠ 0} |i - j|`. Returns 0 for
    /// matrices with no off-diagonal entries.
    pub fn bandwidth(&self) -> usize {
        let mut bw = 0usize;
        for r in 0..self.nrows {
            let (cols, _) = self.row(r);
            if let Some(&first) = cols.first() {
                bw = bw.max(r.saturating_sub(first));
            }
            if let Some(&last) = cols.last() {
                bw = bw.max(last.saturating_sub(r));
            }
        }
        bw
    }

    /// Average number of stored entries per row.
    pub fn avg_nnz_per_row(&self) -> f64 {
        if self.nrows == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.nrows as f64
        }
    }

    /// Flop count of one SpMV with this matrix (2 flops per stored entry),
    /// used by the cost model.
    pub fn spmv_flops(&self) -> u64 {
        2 * self.nnz() as u64
    }

    /// Flop count of applying rows `rows` only.
    pub fn spmv_rows_flops(&self, rows: std::ops::Range<usize>) -> u64 {
        2 * (self.row_ptr[rows.end] - self.row_ptr[rows.start]) as u64
    }

    /// Flop count of applying exactly the rows in `rows` (an explicit
    /// list, as used by [`CsrMatrix::spmv_rows_subset_into`]).
    pub fn spmv_rows_list_flops(&self, rows: &[usize]) -> u64 {
        2 * rows.iter().map(|&r| self.row_nnz(r)).sum::<usize>() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrMatrix {
        // [ 4 -1  0 ]
        // [-1  4 -1 ]
        // [ 0 -1  4 ]
        CsrMatrix::from_dense(3, 3, &[4.0, -1.0, 0.0, -1.0, 4.0, -1.0, 0.0, -1.0, 4.0])
    }

    #[test]
    fn from_coo_builds_valid_csr() {
        let a = small();
        a.validate().unwrap();
        assert_eq!(a.nnz(), 7);
        assert_eq!(a.get(0, 0), 4.0);
        assert_eq!(a.get(0, 2), 0.0);
        assert_eq!(a.get(2, 1), -1.0);
    }

    #[test]
    fn identity_acts_as_identity() {
        let i = CsrMatrix::identity(4);
        i.validate().unwrap();
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.spmv(&x), x);
    }

    #[test]
    fn spmv_matches_dense() {
        let a = small();
        let y = a.spmv(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![2.0, 4.0, 10.0]);
    }

    #[test]
    fn spmv_rows_computes_partial_product() {
        let a = small();
        let x = [1.0, 2.0, 3.0];
        let mut y = vec![0.0; 2];
        a.spmv_rows_into(1..3, &x, &mut y);
        assert_eq!(y, vec![4.0, 10.0]);
    }

    #[test]
    fn spmv_rows_subset_scatters_at_offset_positions() {
        let a = small();
        let x = [1.0, 2.0, 3.0];
        // Full reference over rows 1..3.
        let mut reference = vec![0.0; 2];
        a.spmv_rows_into(1..3, &x, &mut reference);
        // The same range computed as two disjoint subsets.
        let mut y = vec![f64::NAN; 2];
        a.spmv_rows_subset_into(&[2], 1, &x, &mut y);
        assert!(y[0].is_nan(), "unlisted rows are untouched");
        a.spmv_rows_subset_into(&[1], 1, &x, &mut y);
        assert_eq!(y, reference);
        // Empty subset is a no-op.
        a.spmv_rows_subset_into(&[], 1, &x, &mut y);
        assert_eq!(y, reference);
        assert_eq!(a.spmv_rows_list_flops(&[1, 2]), a.spmv_rows_flops(1..3));
        assert_eq!(a.spmv_rows_list_flops(&[]), 0);
    }

    #[test]
    fn spmv_rows_masked_skips_masked_columns() {
        let a = small();
        let x = [1.0, 2.0, 3.0];
        // Mask column 1: row 0 -> 4*1, row 2 -> 4*3
        let y = a.spmv_rows_masked(&[0, 2], &x, |c| c == 1);
        assert_eq!(y, vec![4.0, 12.0]);
    }

    #[test]
    fn spmv_rows_masked_into_matches_allocating_variant() {
        let a = small();
        let x = [1.0, 2.0, 3.0];
        let mut y = vec![0.0; 2];
        a.spmv_rows_masked_into(&[0, 2], &x, |c| c == 1, &mut y);
        assert_eq!(y, a.spmv_rows_masked(&[0, 2], &x, |c| c == 1));
    }

    #[test]
    fn extract_rows_filtered_splits_masked_spmv() {
        let a = small();
        let x = [1.0, 2.0, 3.0];
        let rows = [0usize, 1, 2];
        let keep_odd = a.extract_rows_filtered(&rows, |c| c % 2 == 1);
        keep_odd.validate().unwrap();
        assert_eq!(keep_odd.ncols(), 3, "columns stay global");
        // SpMV over the filtered rows equals the masked SpMV.
        let masked = a.spmv_rows_masked(&rows, &x, |c| c % 2 == 0);
        assert_eq!(keep_odd.spmv(&x), masked);
        // The two complementary filters partition the entries.
        let keep_even = a.extract_rows_filtered(&rows, |c| c % 2 == 0);
        assert_eq!(keep_odd.nnz() + keep_even.nnz(), a.nnz());
    }

    #[test]
    fn extract_rows_keeps_global_columns() {
        let a = small();
        let sub = a.extract_rows(&[0, 2]);
        assert_eq!(sub.nrows(), 2);
        assert_eq!(sub.ncols(), 3);
        assert_eq!(sub.get(0, 1), -1.0);
        assert_eq!(sub.get(1, 1), -1.0);
        assert_eq!(sub.get(1, 2), 4.0);
        sub.validate().unwrap();
    }

    #[test]
    fn principal_submatrix_remaps_columns() {
        let a = small();
        let sub = a.principal_submatrix(&[0, 2]);
        assert_eq!(sub.nrows(), 2);
        assert_eq!(sub.ncols(), 2);
        // A[{0,2},{0,2}] = [[4, 0], [0, 4]] (the -1s couple through index 1).
        assert_eq!(sub.get(0, 0), 4.0);
        assert_eq!(sub.get(0, 1), 0.0);
        assert_eq!(sub.get(1, 1), 4.0);
        sub.validate().unwrap();
    }

    #[test]
    fn transpose_round_trips() {
        let a = CsrMatrix::from_dense(2, 3, &[1.0, 0.0, 2.0, 0.0, 3.0, 0.0]);
        let t = a.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.ncols(), 2);
        assert_eq!(t.get(2, 0), 2.0);
        assert_eq!(t.get(1, 1), 3.0);
        let tt = t.transpose();
        assert_eq!(tt, a);
    }

    #[test]
    fn symmetry_check_accepts_symmetric() {
        assert!(small().is_symmetric(0.0));
    }

    #[test]
    fn symmetry_check_rejects_asymmetric() {
        let a = CsrMatrix::from_dense(2, 2, &[1.0, 2.0, 3.0, 1.0]);
        let err = a.check_symmetric(1e-12).unwrap_err();
        assert!(matches!(err, SparseError::NotSymmetric { .. }));
    }

    #[test]
    fn symmetry_check_handles_structural_asymmetry() {
        // Value present at (0,1) but absent at (1,0).
        let a = CsrMatrix::from_dense(2, 2, &[1.0, 5.0, 0.0, 1.0]);
        assert!(!a.is_symmetric(1e-12));
        // ... but tolerated if within tol.
        let b = CsrMatrix::from_dense(2, 2, &[1.0, 1e-15, 0.0, 1.0]);
        assert!(b.is_symmetric(1e-12));
    }

    #[test]
    fn bandwidth_computed() {
        assert_eq!(small().bandwidth(), 1);
        assert_eq!(CsrMatrix::identity(5).bandwidth(), 0);
        let a = CsrMatrix::from_dense(3, 3, &[1.0, 0.0, 7.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.bandwidth(), 2);
    }

    #[test]
    fn validate_catches_bad_structure() {
        let bad = CsrMatrix::from_raw(2, 2, vec![0, 1], vec![0], vec![1.0]);
        assert!(bad.is_err()); // row_ptr too short
        let bad = CsrMatrix::from_raw(1, 2, vec![0, 2], vec![1, 0], vec![1.0, 2.0]);
        assert!(bad.is_err()); // unsorted columns
        let bad = CsrMatrix::from_raw(1, 2, vec![0, 1], vec![5], vec![1.0]);
        assert!(bad.is_err()); // column out of range
        let good = CsrMatrix::from_raw(1, 2, vec![0, 2], vec![0, 1], vec![1.0, 2.0]);
        assert!(good.is_ok());
    }

    #[test]
    fn diag_and_flops() {
        let a = small();
        assert_eq!(a.diag(), vec![4.0, 4.0, 4.0]);
        assert_eq!(a.spmv_flops(), 14);
        assert_eq!(a.spmv_rows_flops(0..1), 4);
        assert_eq!(a.spmv_rows_flops(1..3), 10);
    }

    #[test]
    fn avg_nnz_per_row_computed() {
        let a = small();
        assert!((a.avg_nnz_per_row() - 7.0 / 3.0).abs() < 1e-15);
    }
}
