//! # esrcg — Algorithm-Based Checkpoint-Recovery for the Conjugate Gradient Method
//!
//! A from-scratch Rust reproduction of *Pachajoa, Pacher, Levonyak,
//! Gansterer: "Algorithm-Based Checkpoint-Recovery for the Conjugate
//! Gradient Method", ICPP 2020* (DOI 10.1145/3404397.3404438): the
//! preconditioned conjugate gradient solver made resilient against node
//! failures through **exact state reconstruction** (ESR), its
//! periodic-storage variant **ESRP**, and the **in-memory buddy
//! checkpoint-restart** (IMCR) baseline — together with all substrates
//! (sparse linear algebra, a simulated distributed cluster with failure
//! injection, preconditioners, workload generators, and a benchmark
//! harness regenerating every table and figure of the paper's evaluation).
//!
//! This facade crate re-exports the public APIs of the workspace crates:
//!
//! * [`sparse`] — CSR matrices, SPD generators, partitioning, Matrix Market,
//! * [`cluster`] — the SPMD runtime, cost model, and failure injection,
//! * [`precond`] — Jacobi / block Jacobi / IC(0) / SSOR preconditioners,
//! * [`core`] — PCG, ASpMV, the redundancy queue, ESR/ESRP/IMCR, and the
//!   experiment driver,
//! * [`campaign`] — stochastic fault traces, the concurrent experiment
//!   fleet, and resilience reports (`BENCH_campaign.json`).
//!
//! ## Quick start
//!
//! ```
//! use esrcg::prelude::*;
//!
//! // A heat-conduction style Poisson problem on 4 simulated cluster nodes,
//! // protected by ESRP with T = 5 against one node failure, which is then
//! // injected at iteration 12.
//! let report = Experiment::builder()
//!     .matrix(MatrixSource::Poisson3d { nx: 6, ny: 6, nz: 6 })
//!     .n_ranks(4)
//!     .strategy(Strategy::Esrp { t: 5 })
//!     .phi(1)
//!     .failure_at(12, 0, 1)
//!     .run()
//!     .expect("experiment runs");
//! assert!(report.converged);
//! let recovery = report.recovery.as_ref().expect("failure was recovered");
//! assert_eq!(recovery.failed_at, 12);
//! ```

pub use esrcg_campaign as campaign;
pub use esrcg_cluster as cluster;
pub use esrcg_core as core;
pub use esrcg_precond as precond;
pub use esrcg_sparse as sparse;

/// Compiles and runs the README's code blocks as doctests (`cargo test
/// --doc`), so the quickstart in `README.md` can never drift from the API.
/// The item only exists while rustdoc collects doctests.
#[doc = include_str!("../README.md")]
#[cfg(doctest)]
pub struct ReadmeDoctests;

/// The types most applications need.
pub mod prelude {
    pub use esrcg_campaign::{
        CampaignReport, CampaignRunner, CampaignSpec, FaultProcess, ProblemSpec, TraceBudget,
    };
    pub use esrcg_cluster::{
        CostModel, FailureSpec, MergedTrace, MetricsRollup, Phase, TraceConfig,
    };
    pub use esrcg_core::driver::{
        paper_failure_iteration, Experiment, MatrixSource, RhsSpec, RunReport,
    };
    pub use esrcg_core::pcg::pcg;
    pub use esrcg_core::solver::{PcgVariant, SpmvMode};
    pub use esrcg_core::strategy::Strategy;
    pub use esrcg_precond::PrecondSpec;
    pub use esrcg_sparse::{CooMatrix, CsrMatrix, KernelBackend, Partition};
}
