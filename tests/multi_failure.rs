//! Multiple simultaneous node failures (paper §2.2.1, §5): contiguous
//! blocks of ψ = φ ranks at the paper's locations (start, center) plus the
//! wrap-around case the modular buddy arithmetic must survive.

use esrcg::prelude::*;
use esrcg::sparse::vector::max_abs_diff;

fn run_case(
    strategy: Strategy,
    n_ranks: usize,
    phi: usize,
    start: usize,
    psi: usize,
) -> (RunReport, RunReport) {
    let m = MatrixSource::EmiliaLike {
        nx: 6,
        ny: 6,
        nz: 10,
    };
    let reference = Experiment::builder()
        .matrix(m.clone())
        .n_ranks(n_ranks)
        .run()
        .expect("reference");
    let c = reference.iterations;
    let t = strategy.interval().expect("resilient strategy");
    let run = Experiment::builder()
        .matrix(m)
        .n_ranks(n_ranks)
        .strategy(strategy)
        .phi(phi)
        .failure_at(paper_failure_iteration(c, t), start, psi)
        .run()
        .expect("failure run");
    (reference, run)
}

#[test]
fn esrp_tolerates_psi_equals_phi_blocks() {
    for (phi, start) in [(1usize, 0usize), (2, 0), (3, 0), (3, 4), (3, 3)] {
        let (reference, run) = run_case(Strategy::Esrp { t: 8 }, 8, phi, start, phi);
        assert!(run.converged, "phi={phi} start={start}");
        assert_eq!(
            run.iterations, reference.iterations,
            "phi={phi} start={start}"
        );
        assert!(
            max_abs_diff(&run.x, &reference.x) < 1e-6,
            "phi={phi} start={start}"
        );
    }
}

#[test]
fn esrp_tolerates_wraparound_blocks() {
    // Ranks 6, 7, 0 fail together: index set I_f is non-contiguous and the
    // buddy/queue arithmetic wraps modulo N.
    let (reference, run) = run_case(Strategy::Esrp { t: 8 }, 8, 3, 6, 3);
    assert!(run.converged);
    assert_eq!(run.iterations, reference.iterations);
    assert!(max_abs_diff(&run.x, &reference.x) < 1e-6);
}

#[test]
fn imcr_tolerates_psi_equals_phi_blocks() {
    for (phi, start) in [(1usize, 0usize), (3, 0), (3, 4), (3, 6)] {
        let (reference, run) = run_case(Strategy::Imcr { t: 8 }, 8, phi, start, phi);
        assert!(run.converged, "phi={phi} start={start}");
        assert_eq!(run.x, reference.x, "phi={phi} start={start}: bitwise");
    }
}

#[test]
fn fewer_failures_than_phi_also_recover() {
    // ψ < φ: more redundancy than needed must not break anything.
    let (reference, run) = run_case(Strategy::Esrp { t: 8 }, 8, 3, 2, 1);
    assert!(run.converged);
    assert_eq!(run.iterations, reference.iterations);
    let (reference, run) = run_case(Strategy::Imcr { t: 8 }, 8, 3, 2, 2);
    assert!(run.converged);
    assert_eq!(run.x, reference.x);
}

#[test]
fn esr_handles_multiple_failures_every_iteration_storage() {
    let (reference, run) = run_case(Strategy::esr(), 8, 3, 5, 3);
    assert!(run.converged);
    assert_eq!(run.iterations, reference.iterations);
    let rec = run.recovery.expect("recovery happened");
    assert_eq!(rec.wasted_iterations, 0);
}

#[test]
fn nearly_whole_cluster_failure() {
    // φ = ψ = N − 1: every entry must still have a copy on the lone
    // survivor. The redundancy rule guarantees it.
    let n_ranks = 5;
    let (reference, run) = run_case(Strategy::Esrp { t: 5 }, n_ranks, 4, 1, 4);
    assert!(run.converged);
    assert_eq!(run.iterations, reference.iterations);
    assert!(max_abs_diff(&run.x, &reference.x) < 1e-5);
}

#[test]
fn recovery_cost_grows_with_psi() {
    // More simultaneous failures mean a larger inner system and more
    // gathering — the reconstruction overhead must not shrink.
    let m = MatrixSource::EmiliaLike {
        nx: 6,
        ny: 6,
        nz: 10,
    };
    let reference = Experiment::builder()
        .matrix(m.clone())
        .n_ranks(8)
        .run()
        .expect("reference");
    let c = reference.iterations;
    let mut last = 0.0;
    for psi in [1usize, 2, 4] {
        let run = Experiment::builder()
            .matrix(m.clone())
            .n_ranks(8)
            .strategy(Strategy::Esrp { t: 8 })
            .phi(psi)
            .failure_at(paper_failure_iteration(c, 8), 0, psi)
            .run()
            .expect("failure run");
        let rec = run
            .recovery
            .as_ref()
            .expect("recovery happened")
            .recovery_time;
        assert!(
            rec > last,
            "recovery time must grow with psi (psi={psi}: {rec} vs {last})"
        );
        last = rec;
    }
}
