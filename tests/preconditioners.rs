//! The ESR reconstruction must work with every shipped preconditioner —
//! the paper's future work asks for "more appropriate preconditioners", so
//! the recovery path cannot be block-Jacobi-specific.

use esrcg::prelude::*;
use esrcg::sparse::vector::max_abs_diff;

const N_RANKS: usize = 6;

fn matrix() -> MatrixSource {
    MatrixSource::EmiliaLike {
        nx: 6,
        ny: 6,
        nz: 10,
    }
}

fn all_preconds() -> Vec<PrecondSpec> {
    vec![
        PrecondSpec::Identity,
        PrecondSpec::Jacobi,
        PrecondSpec::BlockJacobi { max_block: 10 },
        PrecondSpec::BlockJacobi { max_block: 4 },
        PrecondSpec::Ic0,
        PrecondSpec::Ssor { omega: 1.2 },
    ]
}

#[test]
fn every_preconditioner_converges_failure_free() {
    for spec in all_preconds() {
        let run = Experiment::builder()
            .matrix(matrix())
            .n_ranks(N_RANKS)
            .precond(spec)
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name()));
        assert!(run.converged, "{}", spec.name());
        assert!(run.true_relres < 1e-6, "{}", spec.name());
    }
}

#[test]
fn esrp_recovery_works_with_every_preconditioner() {
    for spec in all_preconds() {
        let reference = Experiment::builder()
            .matrix(matrix())
            .n_ranks(N_RANKS)
            .precond(spec)
            .run()
            .expect("reference");
        let c = reference.iterations;
        let t = 8;
        let run = Experiment::builder()
            .matrix(matrix())
            .n_ranks(N_RANKS)
            .precond(spec)
            .strategy(Strategy::Esrp { t })
            .phi(2)
            .failure_at(paper_failure_iteration(c, t), 2, 2)
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name()));
        assert!(run.converged, "{}", spec.name());
        assert_eq!(
            run.iterations,
            c,
            "{}: recovered run must follow the reference trajectory",
            spec.name()
        );
        assert!(
            max_abs_diff(&run.x, &reference.x) < 1e-5,
            "{}: solution deviates by {:e}",
            spec.name(),
            max_abs_diff(&run.x, &reference.x)
        );
    }
}

#[test]
fn stronger_preconditioners_reduce_iterations() {
    // IC(0) and SSOR are the "more appropriate preconditioners" of the
    // paper's future work: they should beat plain Jacobi on this problem.
    let iters = |spec: PrecondSpec| {
        Experiment::builder()
            .matrix(matrix())
            .n_ranks(N_RANKS)
            .precond(spec)
            .run()
            .expect("run")
            .iterations
    };
    let jacobi = iters(PrecondSpec::Jacobi);
    let ic0 = iters(PrecondSpec::Ic0);
    let ssor = iters(PrecondSpec::Ssor { omega: 1.2 });
    assert!(ic0 < jacobi, "IC(0) {ic0} must beat Jacobi {jacobi}");
    assert!(ssor < jacobi, "SSOR {ssor} must beat Jacobi {jacobi}");
}

#[test]
fn imcr_is_preconditioner_agnostic() {
    for spec in [PrecondSpec::Jacobi, PrecondSpec::Ic0] {
        let reference = Experiment::builder()
            .matrix(matrix())
            .n_ranks(N_RANKS)
            .precond(spec)
            .run()
            .expect("reference");
        let run = Experiment::builder()
            .matrix(matrix())
            .n_ranks(N_RANKS)
            .precond(spec)
            .strategy(Strategy::Imcr { t: 8 })
            .phi(1)
            .failure_at(paper_failure_iteration(reference.iterations, 8), 4, 1)
            .run()
            .expect("failure run");
        assert!(run.converged, "{}", spec.name());
        assert_eq!(run.x, reference.x, "{}: bitwise", spec.name());
    }
}
