//! The deterministic-backend contract, end to end: the parallel backend
//! must be **bitwise identical** to the sequential reference — for the raw
//! kernels, for whole PCG trajectories, and for full distributed resilient
//! runs — at 1, 2, and 8 threads.

use esrcg::core::pcg::{pcg_with, PcgWorkspace};
use esrcg::prelude::*;
use esrcg::sparse::backend::PARALLEL_CUTOFF;
use esrcg::sparse::gen::{audikw_like, poisson3d};
use esrcg::sparse::rng::SplitMix64;
use esrcg::sparse::vector;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn backends() -> Vec<KernelBackend> {
    let mut v = vec![KernelBackend::Sequential];
    v.extend(THREAD_COUNTS.map(KernelBackend::parallel));
    v
}

#[test]
fn kernel_results_bit_identical_across_thread_counts() {
    // Sizes chosen to straddle the parallel cutoff and block boundaries.
    let mut rng = SplitMix64::new(99);
    for n in [1000usize, PARALLEL_CUTOFF, 3 * PARALLEL_CUTOFF + 17] {
        let a: Vec<f64> = (0..n).map(|_| rng.range_f64(-1.0, 1.0)).collect();
        let b: Vec<f64> = (0..n).map(|_| rng.range_f64(-1.0, 1.0)).collect();
        let dot_ref = vector::dot(&a, &b);
        let norm_ref = vector::norm2(&a);
        for be in backends() {
            assert_eq!(
                be.dot(&a, &b).to_bits(),
                dot_ref.to_bits(),
                "dot {} n={n}",
                be.name()
            );
            assert_eq!(
                be.norm2(&a).to_bits(),
                norm_ref.to_bits(),
                "norm2 {} n={n}",
                be.name()
            );
        }
    }
}

#[test]
fn spmv_bit_identical_on_poisson_and_elasticity() {
    for (label, m) in [
        ("poisson3d", poisson3d(22, 22, 22)),     // 10_648 rows
        ("audikw-like", audikw_like(14, 14, 18)), // 10_584 rows
    ] {
        let n = m.nrows();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.113).sin()).collect();
        let reference = m.spmv(&x);
        for be in backends() {
            assert_eq!(be.spmv(&m, &x), reference, "{label} {}", be.name());
        }
    }
}

#[test]
fn pcg_trajectories_bit_identical_on_poisson() {
    let a = poisson3d(16, 16, 16); // 4096 rows
    let n = a.nrows();
    let part = Partition::balanced(n, 1);
    let precond = PrecondSpec::paper_default()
        .build(&a, &part)
        .expect("precond");
    let b: Vec<f64> = (0..n).map(|i| ((i % 13) as f64 - 6.0) / 13.0).collect();
    let mut reference = None;
    for be in backends() {
        let mut ws = PcgWorkspace::new(n);
        let res = pcg_with(
            &a,
            &b,
            &vec![0.0; n],
            precond.as_ref(),
            1e-9,
            50_000,
            be,
            &mut ws,
        );
        assert!(res.converged, "{}", be.name());
        match &reference {
            None => reference = Some(res),
            Some(r) => {
                assert_eq!(res.iterations, r.iterations, "{}", be.name());
                assert_eq!(res.x, r.x, "{}: bitwise trajectory", be.name());
                assert_eq!(res.relres.to_bits(), r.relres.to_bits(), "{}", be.name());
            }
        }
    }
}

#[test]
fn pcg_trajectories_bit_identical_on_elasticity() {
    let a = audikw_like(8, 8, 8); // 1536 rows
    let n = a.nrows();
    let part = Partition::balanced(n, 1);
    let precond = PrecondSpec::paper_default()
        .build(&a, &part)
        .expect("precond");
    let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).cos()).collect();
    let mut reference = None;
    for be in backends() {
        let mut ws = PcgWorkspace::new(n);
        let res = pcg_with(
            &a,
            &b,
            &vec![0.0; n],
            precond.as_ref(),
            1e-8,
            50_000,
            be,
            &mut ws,
        );
        assert!(res.converged, "{}", be.name());
        match &reference {
            None => reference = Some(res),
            Some(r) => {
                assert_eq!(res.iterations, r.iterations, "{}", be.name());
                assert_eq!(res.x, r.x, "{}: bitwise trajectory", be.name());
            }
        }
    }
}

#[test]
fn distributed_resilient_run_bit_identical_across_backends() {
    // A full ESRP run with a two-rank failure: the recovery path (masked
    // SpMV splits, inner distributed solve, workspace reuse) must also be
    // backend-invariant, bit for bit.
    let run = |backend: KernelBackend| {
        Experiment::builder()
            .matrix(MatrixSource::Poisson3d {
                nx: 8,
                ny: 8,
                nz: 8,
            })
            .n_ranks(5)
            .strategy(Strategy::Esrp { t: 5 })
            .phi(2)
            .failure_at(12, 1, 2)
            .backend(backend)
            .run()
            .expect("run")
    };
    let reference = run(KernelBackend::Sequential);
    assert!(reference.converged);
    for t in THREAD_COUNTS {
        let r = run(KernelBackend::parallel(t));
        assert_eq!(r.iterations, reference.iterations, "par({t})");
        assert_eq!(r.x, reference.x, "par({t}): bitwise solution");
        assert_eq!(
            r.modeled_time.to_bits(),
            reference.modeled_time.to_bits(),
            "par({t}): modeled time"
        );
        assert_eq!(r.recovery, reference.recovery, "par({t})");
    }
}

#[test]
fn imcr_run_bit_identical_across_backends() {
    let run = |backend: KernelBackend| {
        Experiment::builder()
            .matrix(MatrixSource::EmiliaLike {
                nx: 6,
                ny: 6,
                nz: 6,
            })
            .n_ranks(4)
            .strategy(Strategy::Imcr { t: 5 })
            .phi(1)
            .failure_at(11, 2, 1)
            .backend(backend)
            .run()
            .expect("run")
    };
    let reference = run(KernelBackend::Sequential);
    assert!(reference.converged);
    for t in THREAD_COUNTS {
        let r = run(KernelBackend::parallel(t));
        assert_eq!(r.x, reference.x, "par({t})");
        assert_eq!(r.iterations, reference.iterations, "par({t})");
    }
}
