//! The central claim of ESR/ESRP (paper §2.3): after recovery the solver
//! follows the *same trajectory* as an undisturbed run, so it converges in
//! the same number of iterations to (numerically) the same solution — unlike
//! methods that restart the Krylov space.

use esrcg::prelude::*;
use esrcg::sparse::vector::max_abs_diff;

const N_RANKS: usize = 6;

fn reference(matrix: &MatrixSource) -> RunReport {
    Experiment::builder()
        .matrix(matrix.clone())
        .n_ranks(N_RANKS)
        .run()
        .expect("reference run")
}

fn matrix() -> MatrixSource {
    MatrixSource::EmiliaLike {
        nx: 6,
        ny: 6,
        nz: 12,
    }
}

#[test]
fn failure_free_runs_are_bitwise_identical_across_strategies() {
    let m = matrix();
    let reference = reference(&m);
    assert!(reference.converged);
    for strategy in [
        Strategy::esr(),
        Strategy::Esrp { t: 7 },
        Strategy::Esrp { t: 25 },
        Strategy::Imcr { t: 7 },
        Strategy::Imcr { t: 25 },
    ] {
        let run = Experiment::builder()
            .matrix(m.clone())
            .n_ranks(N_RANKS)
            .strategy(strategy)
            .phi(2)
            .run()
            .expect("resilient run");
        assert_eq!(run.iterations, reference.iterations, "{strategy}");
        assert_eq!(run.x, reference.x, "{strategy}: bitwise identical solution");
        assert_eq!(
            run.residual_drift, reference.residual_drift,
            "{strategy}: identical drift"
        );
    }
}

#[test]
fn esrp_recovery_rejoins_the_reference_trajectory() {
    let m = matrix();
    let reference = reference(&m);
    let c = reference.iterations;
    assert!(
        c > 30,
        "need enough iterations for interesting failures (C = {c})"
    );

    for t in [1usize, 5, 10] {
        let j_f = paper_failure_iteration(c, t);
        let run = Experiment::builder()
            .matrix(m.clone())
            .n_ranks(N_RANKS)
            .strategy(Strategy::Esrp { t })
            .phi(1)
            .failure_at(j_f, 2, 1)
            .run()
            .expect("failure run");
        assert!(run.converged, "T = {t}");
        // Same trajectory: identical iteration count, solution equal to the
        // reference up to the 1e-14 inner-solve tolerance amplified by the
        // remaining iterations.
        assert_eq!(run.iterations, c, "T = {t}");
        assert!(
            max_abs_diff(&run.x, &reference.x) < 1e-6,
            "T = {t}: solution deviates by {}",
            max_abs_diff(&run.x, &reference.x)
        );
        let rec = run.recovery.expect("recovery happened");
        assert!(!rec.full_restart);
        assert_eq!(rec.failed_at, j_f);
        assert_eq!(rec.wasted_iterations, j_f - rec.resumed_at);
    }
}

#[test]
fn imcr_recovery_is_bitwise_exact() {
    // IMCR restores checkpointed values verbatim, so unlike ESRP the
    // post-recovery trajectory is *bitwise* the reference trajectory.
    let m = matrix();
    let reference = reference(&m);
    let c = reference.iterations;
    let t = 10;
    let run = Experiment::builder()
        .matrix(m.clone())
        .n_ranks(N_RANKS)
        .strategy(Strategy::Imcr { t })
        .phi(2)
        .failure_at(paper_failure_iteration(c, t), 1, 2)
        .run()
        .expect("failure run");
    assert!(run.converged);
    assert_eq!(run.iterations, c);
    assert_eq!(run.x, reference.x, "bitwise identical");
}

#[test]
fn esr_reconstruction_wastes_no_iterations() {
    let m = matrix();
    let reference = reference(&m);
    let c = reference.iterations;
    let run = Experiment::builder()
        .matrix(m)
        .n_ranks(N_RANKS)
        .strategy(Strategy::esr())
        .phi(1)
        .failure_at(c / 2, 0, 1)
        .run()
        .expect("failure run");
    let rec = run.recovery.expect("recovery happened");
    assert_eq!(
        rec.wasted_iterations, 0,
        "ESR reconstructs the failure iteration itself"
    );
    assert_eq!(run.iterations, c);
    assert_eq!(
        run.total_loop_trips,
        c + 1,
        "only the failure iteration re-runs"
    );
}

#[test]
fn drift_metric_close_to_reference_after_recovery() {
    // Paper Table 4: the residual drift of recovered runs does not differ
    // significantly from plain PCG.
    let m = matrix();
    let reference = reference(&m);
    let c = reference.iterations;
    let run = Experiment::builder()
        .matrix(m)
        .n_ranks(N_RANKS)
        .strategy(Strategy::Esrp { t: 10 })
        .phi(2)
        .failure_at(paper_failure_iteration(c, 10), 3, 2)
        .run()
        .expect("failure run");
    assert!(run.converged);
    assert!(
        (run.residual_drift - reference.residual_drift).abs() < 0.3,
        "drift {} vs reference {}",
        run.residual_drift,
        reference.residual_drift
    );
    assert!(run.true_relres < 10.0 * reference.true_relres.max(1e-9));
}
