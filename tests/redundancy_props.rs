//! Property-based tests of the redundancy machinery: the ASpMV coverage
//! invariant (the heart of the method's correctness), queue behaviour, and
//! the distributed SpMV's equivalence to the sequential one.

use proptest::prelude::*;

use esrcg::core::aspmv::{AspmvPlan, BuddyMap};
use esrcg::core::dist::plan::CommPlan;
use esrcg::core::queue::RedundancyQueue;
use esrcg::sparse::gen::banded_spd;
use esrcg::sparse::{CsrMatrix, Partition};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The invariant the whole method rests on: after one ASpMV, every
    /// input-vector entry has at least φ + 1 holders (owner + φ others),
    /// so any ψ ≤ φ simultaneous failures leave a live copy.
    #[test]
    fn every_entry_survives_any_phi_failures(
        n in 8usize..60,
        bandwidth in 0usize..8,
        density in 0.0f64..1.0,
        n_ranks in 2usize..9,
        phi_raw in 1usize..8,
        seed in 0u64..1000,
        fail_start_raw in 0usize..8,
    ) {
        let phi = phi_raw.min(n_ranks - 1);
        let a = banded_spd(n, bandwidth, density, seed);
        let part = Partition::balanced(n, n_ranks);
        let plan = CommPlan::build(&a, &part);
        let aspmv = AspmvPlan::build(&plan, &part, phi);

        // Coverage invariant.
        for i in 0..n {
            let holders = aspmv.holders_of(i, &plan, &part);
            prop_assert!(
                holders.len() > phi,
                "entry {i} has only {} holders (phi = {phi}, ranks = {n_ranks})",
                holders.len()
            );
        }

        // Survival under an arbitrary contiguous block of phi failures.
        let fail_start = fail_start_raw % n_ranks;
        let failed: Vec<usize> = (0..phi).map(|k| (fail_start + k) % n_ranks).collect();
        for i in 0..n {
            let holders = aspmv.holders_of(i, &plan, &part);
            let survivors = holders.iter().filter(|h| !failed.contains(h)).count();
            prop_assert!(
                survivors >= 1,
                "entry {i} lost all copies when ranks {failed:?} failed"
            );
        }
    }

    /// Eq. 1 destinations are always φ distinct non-self ranks, and the
    /// in/out relations mirror each other.
    #[test]
    fn buddy_map_laws(n_ranks in 2usize..20, phi_raw in 1usize..10) {
        let phi = phi_raw.min(n_ranks - 1);
        let map = BuddyMap::new(n_ranks, phi);
        for s in 0..n_ranks {
            let out = map.out_buddies(s);
            prop_assert_eq!(out.len(), phi);
            let mut sorted = out.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), phi, "duplicates in out_buddies({})", s);
            prop_assert!(!out.contains(&s));
            for &d in out {
                prop_assert!(map.in_buddies(d).contains(&s));
            }
        }
        // Total degree is conserved.
        let total_in: usize = (0..n_ranks).map(|l| map.in_buddies(l).len()).sum();
        prop_assert_eq!(total_in, n_ranks * phi);
    }

    /// The queue holds at most three slots, keeps them ordered, and its
    /// consecutive-pair search matches a brute-force scan.
    #[test]
    fn queue_laws(iters in proptest::collection::vec(0usize..40, 1..24)) {
        let mut sorted = iters.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let mut q = RedundancyQueue::new();
        for &j in &sorted {
            q.push(j, vec![(j, j as f64)]);
            prop_assert!(q.len() <= 3);
            let held = q.iters();
            prop_assert!(held.windows(2).all(|w| w[0] < w[1]), "unsorted: {held:?}");
            // Brute-force consecutive pair.
            let expect = held
                .windows(2)
                .rev()
                .find(|w| w[0] + 1 == w[1])
                .map(|w| w[1]);
            prop_assert_eq!(q.latest_consecutive_pair(), expect);
        }
    }

    /// Distributed SpMV (halo exchange + local rows) is bitwise equal to
    /// the sequential product for any rank count.
    #[test]
    fn distributed_spmv_equals_sequential(
        n in 4usize..40,
        bandwidth in 0usize..6,
        density in 0.0f64..1.0,
        seed in 0u64..500,
        n_ranks in 1usize..7,
    ) {
        use esrcg::cluster::{run_spmd, CostModel};
        use esrcg::core::dist::halo::exchange_halo;
        use std::sync::Arc;

        let a = Arc::new(banded_spd(n, bandwidth, density, seed));
        let x: Arc<Vec<f64>> = Arc::new((0..n).map(|i| (i as f64 * 0.7).sin()).collect());
        let expected = a.spmv(&x);
        let part = Arc::new(Partition::balanced(n, n_ranks));
        let plan = Arc::new(CommPlan::build(&a, &part));
        let out = run_spmd(n_ranks, CostModel::default(), {
            let (a, x, part, plan) = (a.clone(), x.clone(), part.clone(), plan.clone());
            move |ctx| {
                let range = part.range(ctx.rank());
                let mut full = vec![0.0; part.n()];
                exchange_halo(ctx, &plan, &part, &x[range.clone()], 0, &mut full, None);
                let mut y = vec![0.0; range.len()];
                a.spmv_rows_into(range, &full, &mut y);
                y
            }
        });
        let got: Vec<f64> = out.results.into_iter().flatten().collect();
        prop_assert_eq!(got, expected);
    }

    /// CSR transpose is an involution and preserves the entry set.
    #[test]
    fn transpose_involution(
        n in 1usize..30,
        bandwidth in 0usize..6,
        density in 0.0f64..1.0,
        seed in 0u64..500,
    ) {
        let a = banded_spd(n, bandwidth, density, seed);
        let tt = a.transpose().transpose();
        prop_assert_eq!(&tt, &a);
    }

    /// Matrix Market write→read round-trips exactly.
    #[test]
    fn matrix_market_round_trip(
        n in 1usize..20,
        bandwidth in 0usize..5,
        density in 0.0f64..1.0,
        seed in 0u64..500,
    ) {
        let a = banded_spd(n, bandwidth, density, seed);
        let mut buf = Vec::new();
        esrcg::sparse::mm::write_matrix_market(&a, &mut buf).expect("write");
        let b = esrcg::sparse::mm::read_matrix_market(&buf[..]).expect("read");
        prop_assert_eq!(a, b);
    }

    /// Partition laws: ranges tile 0..n, owner lookup is consistent.
    #[test]
    fn partition_laws(n in 0usize..200, n_ranks in 1usize..17) {
        let part = Partition::balanced(n, n_ranks);
        prop_assert_eq!(part.n(), n);
        let mut covered = 0usize;
        for (s, range) in part.iter() {
            for i in range.clone() {
                prop_assert_eq!(part.owner_of(i), s);
            }
            covered += range.len();
            // Balanced: sizes differ by at most one.
            prop_assert!(range.len() + 1 >= n / n_ranks);
            prop_assert!(range.len() <= n / n_ranks + 1);
        }
        prop_assert_eq!(covered, n);
    }
}

#[test]
fn extra_traffic_is_monotone_in_phi() {
    // Not random: a structured check that the augmentation never shrinks
    // as φ grows, on a matrix with little natural redundancy.
    let a = CsrMatrix::identity(64);
    let part = Partition::balanced(64, 8);
    let plan = CommPlan::build(&a, &part);
    let mut last = 0;
    for phi in 1..8 {
        let extra = AspmvPlan::build(&plan, &part, phi).total_extra_traffic();
        assert!(extra >= last, "phi={phi}");
        assert!(extra >= 64 * phi.min(7), "diagonal matrix needs phi copies each");
        last = extra;
    }
}
