//! Property-based tests of the redundancy machinery: the ASpMV coverage
//! invariant (the heart of the method's correctness), queue behaviour, and
//! the distributed SpMV's equivalence to the sequential one.
//!
//! Cases are drawn from a seeded in-repo PRNG rather than an external
//! property-testing framework (the build carries no dependencies): every
//! run explores the same deterministic case set, and a failing case prints
//! its parameters for direct reproduction.

use esrcg::core::aspmv::{AspmvPlan, BuddyMap};
use esrcg::core::dist::plan::CommPlan;
use esrcg::core::queue::RedundancyQueue;
use esrcg::sparse::gen::banded_spd;
use esrcg::sparse::rng::SplitMix64;
use esrcg::sparse::{CsrMatrix, Partition};

const CASES: usize = 64;

/// The invariant the whole method rests on: after one ASpMV, every
/// input-vector entry has at least φ + 1 holders (owner + φ others), so any
/// ψ ≤ φ simultaneous failures leave a live copy.
#[test]
fn every_entry_survives_any_phi_failures() {
    let mut rng = SplitMix64::new(0xA5);
    for case in 0..CASES {
        let n = rng.range_usize(8, 60);
        let bandwidth = rng.range_usize(0, 8);
        let density = rng.next_f64();
        let n_ranks = rng.range_usize(2, 9);
        let phi = rng.range_usize(1, 8).min(n_ranks - 1);
        let seed = rng.next_u64() % 1000;
        let fail_start = rng.range_usize(0, 8) % n_ranks;
        let ctx = format!(
            "case {case}: n={n} bw={bandwidth} density={density:.3} ranks={n_ranks} \
             phi={phi} seed={seed} fail_start={fail_start}"
        );

        let a = banded_spd(n, bandwidth, density, seed);
        let part = Partition::balanced(n, n_ranks);
        let plan = CommPlan::build(&a, &part);
        let aspmv = AspmvPlan::build(&plan, &part, phi);

        // Coverage invariant.
        for i in 0..n {
            let holders = aspmv.holders_of(i, &plan, &part);
            assert!(
                holders.len() > phi,
                "{ctx}: entry {i} has only {} holders",
                holders.len()
            );
        }

        // Survival under an arbitrary contiguous block of phi failures.
        let failed: Vec<usize> = (0..phi).map(|k| (fail_start + k) % n_ranks).collect();
        for i in 0..n {
            let holders = aspmv.holders_of(i, &plan, &part);
            let survivors = holders.iter().filter(|h| !failed.contains(h)).count();
            assert!(
                survivors >= 1,
                "{ctx}: entry {i} lost all copies when ranks {failed:?} failed"
            );
        }
    }
}

/// Eq. 1 destinations are always φ distinct non-self ranks, and the in/out
/// relations mirror each other.
#[test]
fn buddy_map_laws() {
    let mut rng = SplitMix64::new(0xB6);
    for case in 0..CASES {
        let n_ranks = rng.range_usize(2, 20);
        let phi = rng.range_usize(1, 10).min(n_ranks - 1);
        let map = BuddyMap::new(n_ranks, phi);
        for s in 0..n_ranks {
            let out = map.out_buddies(s);
            assert_eq!(out.len(), phi, "case {case}");
            let mut sorted = out.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(
                sorted.len(),
                phi,
                "case {case}: duplicates in out_buddies({s})"
            );
            assert!(!out.contains(&s));
            for &d in out {
                assert!(map.in_buddies(d).contains(&s));
            }
        }
        // Total degree is conserved.
        let total_in: usize = (0..n_ranks).map(|l| map.in_buddies(l).len()).sum();
        assert_eq!(total_in, n_ranks * phi);
    }
}

/// The queue holds at most three slots, keeps them ordered, and its
/// consecutive-pair search matches a brute-force scan.
#[test]
fn queue_laws() {
    let mut rng = SplitMix64::new(0xC7);
    for _case in 0..CASES {
        let len = rng.range_usize(1, 24);
        let mut iters: Vec<usize> = (0..len).map(|_| rng.range_usize(0, 40)).collect();
        iters.sort_unstable();
        iters.dedup();
        let mut q = RedundancyQueue::new();
        for &j in &iters {
            q.push(j, vec![(j, j as f64)]);
            assert!(q.len() <= 3);
            let held = q.iters();
            assert!(held.windows(2).all(|w| w[0] < w[1]), "unsorted: {held:?}");
            // Brute-force consecutive pair.
            let expect = held
                .windows(2)
                .rev()
                .find(|w| w[0] + 1 == w[1])
                .map(|w| w[1]);
            assert_eq!(q.latest_consecutive_pair(), expect);
        }
    }
}

/// Distributed SpMV (halo exchange + local rows) is bitwise equal to the
/// sequential product for any rank count.
#[test]
fn distributed_spmv_equals_sequential() {
    use esrcg::cluster::{run_spmd, CostModel};
    use esrcg::core::dist::halo::exchange_halo;
    use std::sync::Arc;

    let mut rng = SplitMix64::new(0xD8);
    for case in 0..CASES {
        let n = rng.range_usize(4, 40);
        let bandwidth = rng.range_usize(0, 6);
        let density = rng.next_f64();
        let seed = rng.next_u64() % 500;
        let n_ranks = rng.range_usize(1, 7);

        let a = Arc::new(banded_spd(n, bandwidth, density, seed));
        let x: Arc<Vec<f64>> = Arc::new((0..n).map(|i| (i as f64 * 0.7).sin()).collect());
        let expected = a.spmv(&x);
        let part = Arc::new(Partition::balanced(n, n_ranks));
        let plan = Arc::new(CommPlan::build(&a, &part));
        let out = run_spmd(n_ranks, CostModel::default(), {
            let (a, x, part, plan) = (a.clone(), x.clone(), part.clone(), plan.clone());
            move |ctx| {
                let range = part.range(ctx.rank());
                let mut full = vec![0.0; part.n()];
                exchange_halo(ctx, &plan, &part, &x[range.clone()], 0, &mut full, None);
                let mut y = vec![0.0; range.len()];
                a.spmv_rows_into(range, &full, &mut y);
                y
            }
        });
        let got: Vec<f64> = out.results.into_iter().flatten().collect();
        assert_eq!(got, expected, "case {case}: n={n} ranks={n_ranks}");
    }
}

/// CSR transpose is an involution and preserves the entry set.
#[test]
fn transpose_involution() {
    let mut rng = SplitMix64::new(0xE9);
    for _case in 0..CASES {
        let n = rng.range_usize(1, 30);
        let bandwidth = rng.range_usize(0, 6);
        let density = rng.next_f64();
        let seed = rng.next_u64() % 500;
        let a = banded_spd(n, bandwidth, density, seed);
        let tt = a.transpose().transpose();
        assert_eq!(tt, a);
    }
}

/// Matrix Market write→read round-trips exactly.
#[test]
fn matrix_market_round_trip() {
    let mut rng = SplitMix64::new(0xFA);
    for _case in 0..CASES {
        let n = rng.range_usize(1, 20);
        let bandwidth = rng.range_usize(0, 5);
        let density = rng.next_f64();
        let seed = rng.next_u64() % 500;
        let a = banded_spd(n, bandwidth, density, seed);
        let mut buf = Vec::new();
        esrcg::sparse::mm::write_matrix_market(&a, &mut buf).expect("write");
        let b = esrcg::sparse::mm::read_matrix_market(&buf[..]).expect("read");
        assert_eq!(a, b);
    }
}

/// Partition laws: ranges tile 0..n, owner lookup is consistent.
#[test]
fn partition_laws() {
    let mut rng = SplitMix64::new(0x1B);
    for _case in 0..CASES {
        let n = rng.range_usize(0, 200);
        let n_ranks = rng.range_usize(1, 17);
        let part = Partition::balanced(n, n_ranks);
        assert_eq!(part.n(), n);
        let mut covered = 0usize;
        for (s, range) in part.iter() {
            for i in range.clone() {
                assert_eq!(part.owner_of(i), s);
            }
            covered += range.len();
            // Balanced: sizes differ by at most one.
            assert!(range.len() + 1 >= n / n_ranks);
            assert!(range.len() <= n / n_ranks + 1);
        }
        assert_eq!(covered, n);
    }
}

#[test]
fn extra_traffic_is_monotone_in_phi() {
    // Not random: a structured check that the augmentation never shrinks
    // as φ grows, on a matrix with little natural redundancy.
    let a = CsrMatrix::identity(64);
    let part = Partition::balanced(64, 8);
    let plan = CommPlan::build(&a, &part);
    let mut last = 0;
    for phi in 1..8 {
        let extra = AspmvPlan::build(&plan, &part, phi).total_extra_traffic();
        assert!(extra >= last, "phi={phi}");
        assert!(
            extra >= 64 * phi.min(7),
            "diagonal matrix needs phi copies each"
        );
        last = extra;
    }
}
