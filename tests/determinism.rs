//! Determinism guarantees: the simulated cluster must produce bitwise
//! reproducible results and modeled times regardless of thread scheduling,
//! and the distributed solver must agree with the sequential reference.

use esrcg::core::pcg::pcg;
use esrcg::prelude::*;
use esrcg::sparse::vector::max_abs_diff;

fn matrix() -> MatrixSource {
    MatrixSource::AudikwLike {
        nx: 4,
        ny: 4,
        nz: 8,
    }
}

#[test]
fn repeated_runs_are_bitwise_identical() {
    let run = || {
        Experiment::builder()
            .matrix(matrix())
            .n_ranks(5)
            .strategy(Strategy::Esrp { t: 5 })
            .phi(2)
            .failure_at(12, 1, 2)
            .run()
            .expect("run")
    };
    let a = run();
    let b = run();
    assert_eq!(a.x, b.x, "solutions bitwise identical");
    assert_eq!(
        a.modeled_time.to_bits(),
        b.modeled_time.to_bits(),
        "modeled time bitwise identical"
    );
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.recovery, b.recovery);
    assert_eq!(a.residual_drift.to_bits(), b.residual_drift.to_bits());
}

#[test]
fn distributed_solution_matches_sequential_pcg() {
    let m = matrix().build().expect("matrix");
    let n = m.nrows();
    let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.137).sin() + 0.5).collect();
    let b = m.spmv(&x_true);
    let part = Partition::balanced(n, 1);
    let precond = PrecondSpec::paper_default()
        .build(&m, &part)
        .expect("precond");
    let seq = pcg(&m, &b, &vec![0.0; n], precond.as_ref(), 1e-8, 100_000);
    assert!(seq.converged);

    // With a single rank the distributed solver must match bitwise; with
    // more ranks the block Jacobi blocks change (node-local blocks), so the
    // trajectory differs but the solution agrees to solver tolerance.
    let dist1 = Experiment::builder()
        .matrix(matrix())
        .n_ranks(1)
        .run()
        .expect("single-rank run");
    assert_eq!(dist1.iterations, seq.iterations);
    assert_eq!(
        dist1.x, seq.x,
        "single rank is bitwise the sequential solver"
    );

    for n_ranks in [2usize, 3, 7] {
        let dist = Experiment::builder()
            .matrix(matrix())
            .n_ranks(n_ranks)
            .run()
            .expect("multi-rank run");
        assert!(dist.converged, "{n_ranks} ranks");
        assert!(
            max_abs_diff(&dist.x, &x_true) < 1e-5,
            "{n_ranks} ranks: solution error {}",
            max_abs_diff(&dist.x, &x_true)
        );
    }
}

#[test]
fn modeled_time_ordering_is_stable() {
    // The qualitative cost ordering must be deterministic and sensible:
    // reference < ESRP(T=20) < ESR, all failure-free.
    let run = |strategy: Strategy, phi: usize| {
        Experiment::builder()
            .matrix(matrix())
            .n_ranks(5)
            .strategy(strategy)
            .phi(phi)
            .run()
            .expect("run")
            .modeled_time
    };
    let t_ref = run(Strategy::None, 0);
    let t_esrp = run(Strategy::Esrp { t: 20 }, 2);
    let t_esr = run(Strategy::esr(), 2);
    assert!(t_ref < t_esrp, "{t_ref} < {t_esrp}");
    assert!(t_esrp < t_esr, "{t_esrp} < {t_esr}");
}

#[test]
fn phase_accounting_is_consistent() {
    let report = Experiment::builder()
        .matrix(matrix())
        .n_ranks(4)
        .strategy(Strategy::Esrp { t: 5 })
        .phi(1)
        .failure_at(12, 0, 1)
        .run()
        .expect("run");
    // Per-rank modeled time sums over phases equal the final clock
    // (every clock advance is attributed to exactly one phase), and the
    // maximum equals the reported modeled time.
    let max_total = report
        .per_rank_stats
        .iter()
        .map(|s| s.total_time())
        .fold(0.0f64, f64::max);
    assert!((max_total - report.modeled_time).abs() <= 1e-12 * report.modeled_time.max(1.0));
    // The failure run must have spent time in recovery phases.
    let recovery_time: f64 = report
        .per_rank_stats
        .iter()
        .map(|s| s.recovery_time())
        .sum();
    assert!(recovery_time > 0.0);
    // Flops were charged in the main phases.
    let total = report.stats_total;
    assert!(total.flops[Phase::SpMV as usize] > 0);
    assert!(total.flops[Phase::Precond as usize] > 0);
    assert!(total.msgs_sent[Phase::Reduction as usize] > 0);
    assert!(
        total.msgs_sent[Phase::Storage as usize] > 0,
        "ASpMV extras flowed"
    );
}

#[test]
fn iteration_count_is_rank_count_invariant_for_jacobi() {
    // With a point-Jacobi preconditioner (no rank-dependent blocks), the
    // preconditioned operator is identical for every partition, and the
    // deterministic reductions make even the iteration count invariant.
    let runs: Vec<RunReport> = [1usize, 2, 4, 8]
        .iter()
        .map(|&r| {
            Experiment::builder()
                .matrix(matrix())
                .precond(PrecondSpec::Jacobi)
                .n_ranks(r)
                .run()
                .expect("run")
        })
        .collect();
    for r in &runs[1..] {
        assert!(r.converged);
        assert_eq!(r.iterations, runs[0].iterations);
        assert!(max_abs_diff(&r.x, &runs[0].x) < 1e-9);
    }
}
