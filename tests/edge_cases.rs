//! Failure-timing edge cases: the storage-stage boundaries of paper §3
//! (Fig. 1), failures before any recovery point exists, and failures near
//! convergence.

use esrcg::prelude::*;
use esrcg::sparse::vector::max_abs_diff;

const N_RANKS: usize = 6;

fn matrix() -> MatrixSource {
    MatrixSource::EmiliaLike {
        nx: 6,
        ny: 6,
        nz: 12,
    }
}

fn reference() -> RunReport {
    Experiment::builder()
        .matrix(matrix())
        .n_ranks(N_RANKS)
        .run()
        .expect("reference")
}

fn esrp_failure_at(t: usize, j_f: usize) -> RunReport {
    Experiment::builder()
        .matrix(matrix())
        .n_ranks(N_RANKS)
        .strategy(Strategy::Esrp { t })
        .phi(1)
        .failure_at(j_f, 1, 1)
        .run()
        .expect("failure run")
}

/// The paper's Fig. 1 walkthrough: a failure right after the queue gains
/// p'(2T) (i.e. at iteration 2T, during the first half of a storage stage)
/// must fall back to iteration T + 1, not 2T.
#[test]
fn failure_at_first_storage_iteration_falls_back_a_stage() {
    let c = reference().iterations;
    let t = 10;
    assert!(2 * t < c, "C = {c} too small for this scenario");
    let run = esrp_failure_at(t, 2 * t);
    let rec = run.recovery.expect("recovery happened");
    assert_eq!(rec.resumed_at, t + 1, "paper's Fig. 1 example");
    assert_eq!(rec.wasted_iterations, t - 1);
    assert!(run.converged);
    assert_eq!(run.iterations, c);
}

/// A failure at the *second* storage iteration (2T + 1) can use the copies
/// just stored: rollback to 2T + 1 itself, zero iterations wasted.
#[test]
fn failure_at_second_storage_iteration_wastes_nothing() {
    let c = reference().iterations;
    let t = 10;
    assert!(2 * t + 1 < c);
    let run = esrp_failure_at(t, 2 * t + 1);
    let rec = run.recovery.expect("recovery happened");
    assert_eq!(rec.resumed_at, 2 * t + 1);
    assert_eq!(rec.wasted_iterations, 0);
    assert!(run.converged);
}

/// Worst case within an interval: one iteration before the next storage
/// stage loses nearly T iterations.
#[test]
fn failure_just_before_storage_stage_is_worst_case() {
    let c = reference().iterations;
    let t = 10;
    let j_f = 3 * t - 1;
    assert!(j_f < c);
    let run = esrp_failure_at(t, j_f);
    let rec = run.recovery.expect("recovery happened");
    assert_eq!(rec.resumed_at, 2 * t + 1);
    assert_eq!(rec.wasted_iterations, t - 2);
    assert!(run.converged);
}

/// Failures before the first completed storage stage force a full restart —
/// and the restart still converges to the right answer.
#[test]
fn esrp_failure_before_first_stage_restarts() {
    let reference = reference();
    let t = 10;
    for j_f in [1usize, 5, 10] {
        // Stage (10, 11) completes at iteration 11; failures at j <= 10 have
        // no recovery point.
        let run = esrp_failure_at(t, j_f);
        let rec = run.recovery.expect("recovery happened");
        assert!(rec.full_restart, "j_f = {j_f}");
        assert_eq!(rec.resumed_at, 0);
        assert!(run.converged);
        assert_eq!(run.iterations, reference.iterations);
        assert_eq!(run.x, reference.x, "restart is bitwise exact");
    }
}

#[test]
fn imcr_failure_before_first_checkpoint_restarts() {
    let reference = reference();
    let run = Experiment::builder()
        .matrix(matrix())
        .n_ranks(N_RANKS)
        .strategy(Strategy::Imcr { t: 10 })
        .phi(1)
        .failure_at(7, 0, 1)
        .run()
        .expect("failure run");
    let rec = run.recovery.expect("recovery happened");
    assert!(rec.full_restart);
    assert!(run.converged);
    assert_eq!(run.x, reference.x);
}

#[test]
fn imcr_failure_exactly_at_checkpoint_wastes_nothing() {
    let c = reference().iterations;
    let t = 10;
    assert!(2 * t < c);
    let run = Experiment::builder()
        .matrix(matrix())
        .n_ranks(N_RANKS)
        .strategy(Strategy::Imcr { t })
        .phi(1)
        .failure_at(2 * t, 3, 1)
        .run()
        .expect("failure run");
    let rec = run.recovery.expect("recovery happened");
    assert_eq!(rec.resumed_at, 2 * t);
    assert_eq!(rec.wasted_iterations, 0);
}

/// ESR at the earliest recoverable iteration (j = 1).
#[test]
fn esr_recovers_at_iteration_one() {
    let run = esrp_failure_at(1, 1);
    let rec = run.recovery.expect("recovery happened");
    assert!(!rec.full_restart);
    assert_eq!(rec.resumed_at, 1);
    assert!(run.converged);
}

/// ESR failure at iteration 0: only one copy exists, so restart.
#[test]
fn esr_failure_at_iteration_zero_restarts() {
    let run = esrp_failure_at(1, 0);
    let rec = run.recovery.expect("recovery happened");
    assert!(rec.full_restart);
    assert!(run.converged);
}

/// A failure in the last interval before convergence.
#[test]
fn failure_near_convergence() {
    let reference = reference();
    let c = reference.iterations;
    let run = esrp_failure_at(5, c - 1);
    assert!(run.converged);
    assert_eq!(run.iterations, c);
    assert!(max_abs_diff(&run.x, &reference.x) < 1e-6);
}

/// T larger than the whole solve: no stage ever completes before the
/// failure, so recovery degenerates to a restart (documented behaviour).
#[test]
fn interval_longer_than_solve_restarts() {
    let c = reference().iterations;
    let run = esrp_failure_at(10 * c, c / 2);
    let rec = run.recovery.expect("recovery happened");
    assert!(rec.full_restart);
    assert!(run.converged);
}

/// Injecting at an iteration the solver never reaches: the run completes
/// without any recovery.
#[test]
fn failure_beyond_convergence_never_triggers() {
    let c = reference().iterations;
    let run = esrp_failure_at(5, c + 100);
    assert!(run.converged);
    assert!(run.recovery.is_none());
}
