//! Lifecycle contract of the persistent worker pool behind the parallel
//! backend: results must be bitwise stable across pool reuse, pool
//! teardown/rebuild, dispatch modes, and concurrent `subdivided()` backends
//! — the pool is a pure scheduling artifact, invisible to the arithmetic.

use esrcg::core::pcg::{pcg_with, PcgWorkspace};
use esrcg::prelude::*;
use esrcg::sparse::gen::poisson3d;
use esrcg::sparse::pool::{drop_local_pool, local_pool_threads, set_dispatch_mode, DispatchMode};
use esrcg::sparse::rng::SplitMix64;
use esrcg::sparse::vector;

/// Above the backend's parallel cutoff, so kernels actually dispatch.
const N: usize = 40_000;

fn vecs(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut rng = SplitMix64::new(seed);
    let a = (0..n).map(|_| rng.range_f64(-1.0, 1.0)).collect();
    let b = (0..n).map(|_| rng.range_f64(-1.0, 1.0)).collect();
    (a, b)
}

#[test]
fn repeated_pool_reuse_is_bitwise_stable() {
    let (a, b) = vecs(N, 1);
    let reference = vector::dot(&a, &b);
    let be = KernelBackend::parallel(4);
    // Hundreds of rounds through the same pool: every result identical to
    // the sequential reference, no drift, no corruption.
    for round in 0..300 {
        let got = be.dot(&a, &b);
        assert_eq!(got.to_bits(), reference.to_bits(), "round {round}");
    }
    let m = poisson3d(22, 22, 22);
    let x: Vec<f64> = (0..m.nrows()).map(|i| (i as f64 * 0.113).sin()).collect();
    let spmv_ref = m.spmv(&x);
    let mut y = vec![0.0; m.nrows()];
    for round in 0..50 {
        be.spmv_into(&m, &x, &mut y);
        assert_eq!(y, spmv_ref, "round {round}");
    }
}

#[test]
fn pool_drop_and_rebuild_preserves_results() {
    let (a, b) = vecs(N, 2);
    let reference = vector::dot(&a, &b);
    let be = KernelBackend::parallel(3);

    assert_eq!(be.dot(&a, &b).to_bits(), reference.to_bits());
    assert!(
        local_pool_threads() >= 3,
        "the kernel call built this thread's pool"
    );

    // Tear the pool down mid-stream; the next call transparently rebuilds.
    drop_local_pool();
    assert_eq!(local_pool_threads(), 0);
    assert_eq!(be.dot(&a, &b).to_bits(), reference.to_bits());
    assert!(local_pool_threads() >= 3);

    // Several drop/rebuild cycles: still bitwise identical.
    for _ in 0..5 {
        drop_local_pool();
        assert_eq!(be.dot(&a, &b).to_bits(), reference.to_bits());
    }
}

#[test]
fn pool_grows_for_wider_backends() {
    drop_local_pool();
    let (a, b) = vecs(N, 3);
    let reference = vector::dot(&a, &b);
    // Narrow first, then wider: the pool must grow, never shrink, and every
    // width must agree bitwise.
    for threads in [2usize, 4, 8] {
        let got = KernelBackend::parallel(threads).dot(&a, &b);
        assert_eq!(got.to_bits(), reference.to_bits(), "threads {threads}");
        assert!(local_pool_threads() >= threads);
    }
    let grown = local_pool_threads();
    // A narrower call afterwards reuses the grown pool.
    let got = KernelBackend::parallel(2).dot(&a, &b);
    assert_eq!(got.to_bits(), reference.to_bits());
    assert_eq!(local_pool_threads(), grown, "no shrink on narrower calls");
}

#[test]
fn subdivided_backends_share_no_state_across_threads() {
    // The SPMD solver hands each rank thread a subdivided backend; each
    // rank thread builds its own pool. Run several such threads truly
    // concurrently on shared inputs and check every result is bitwise the
    // sequential reference — and that each thread saw its *own* pool.
    let parent = KernelBackend::parallel(8);
    let (a, b) = vecs(N, 4);
    let reference = vector::dot(&a, &b);
    let ranks = 4;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..ranks {
            let (a, b) = (&a, &b);
            handles.push(scope.spawn(move || {
                assert_eq!(
                    local_pool_threads(),
                    0,
                    "fresh rank thread starts with no pool"
                );
                let be = parent.subdivided(ranks);
                let mut bits = Vec::new();
                for _ in 0..50 {
                    bits.push(be.dot(a, b).to_bits());
                }
                (bits, local_pool_threads())
            }));
        }
        for h in handles {
            let (bits, pool_threads) = h.join().expect("rank thread");
            assert!(bits.iter().all(|&x| x == reference.to_bits()));
            assert_eq!(
                pool_threads,
                parent.subdivided(ranks).threads(),
                "each rank thread built a pool of its own subdivided width"
            );
        }
    });
}

#[test]
fn dispatch_modes_are_bitwise_identical() {
    let (a, b) = vecs(N, 5);
    let m = poisson3d(16, 16, 16);
    let x: Vec<f64> = (0..m.nrows()).map(|i| (i as f64 * 0.17).cos()).collect();
    let be = KernelBackend::parallel(4);

    set_dispatch_mode(DispatchMode::Pooled);
    let dot_pooled = be.dot(&a, &b);
    let spmv_pooled = be.spmv(&m, &x);

    set_dispatch_mode(DispatchMode::Spawn);
    let dot_spawn = be.dot(&a, &b);
    let spmv_spawn = be.spmv(&m, &x);
    set_dispatch_mode(DispatchMode::Pooled);

    assert_eq!(dot_pooled.to_bits(), dot_spawn.to_bits());
    assert_eq!(spmv_pooled, spmv_spawn);
}

#[test]
fn pcg_workspace_reuse_on_one_pool_matches_reference() {
    // The realistic composition: repeated PCG solves reusing both the
    // solver workspace and this thread's worker pool.
    let a = poisson3d(14, 14, 14);
    let n = a.nrows();
    let part = Partition::balanced(n, 1);
    let precond = PrecondSpec::paper_default()
        .build(&a, &part)
        .expect("precond");
    let b: Vec<f64> = (0..n).map(|i| ((i % 11) as f64 - 5.0) / 11.0).collect();
    let be = KernelBackend::parallel(4);
    let mut ws = PcgWorkspace::new(n);
    let mut reference = None;
    for round in 0..4 {
        if round == 2 {
            // Mid-series pool teardown must be invisible.
            drop_local_pool();
        }
        let res = pcg_with(
            &a,
            &b,
            &vec![0.0; n],
            precond.as_ref(),
            1e-9,
            50_000,
            be,
            &mut ws,
        );
        assert!(res.converged, "round {round}");
        match &reference {
            None => reference = Some(res),
            Some(r) => {
                assert_eq!(res.iterations, r.iterations, "round {round}");
                assert_eq!(res.x, r.x, "round {round}: bitwise trajectory");
            }
        }
    }
}

#[test]
fn full_esrp_run_identical_under_both_dispatch_modes() {
    // End to end: a distributed resilient run with a failure, under pooled
    // and spawn dispatch, must match the sequential backend bit for bit.
    let run = |backend: KernelBackend| {
        Experiment::builder()
            .matrix(MatrixSource::Poisson3d {
                nx: 7,
                ny: 7,
                nz: 7,
            })
            .n_ranks(4)
            .strategy(Strategy::Esrp { t: 5 })
            .phi(1)
            .failure_at(11, 2, 1)
            .backend(backend)
            .run()
            .expect("run")
    };
    let reference = run(KernelBackend::Sequential);
    assert!(reference.converged);
    for mode in [DispatchMode::Pooled, DispatchMode::Spawn] {
        set_dispatch_mode(mode);
        let r = run(KernelBackend::parallel(4));
        assert_eq!(r.iterations, reference.iterations, "{mode:?}");
        assert_eq!(r.x, reference.x, "{mode:?}: bitwise solution");
    }
    set_dispatch_mode(DispatchMode::Pooled);
}
