//! The recovery-drill harness, end to end: every cataloged scenario runs,
//! exercises the recovery path it names, emits byte-stable artifact
//! lines across fleet worker counts, and the DRILLS.md regression gate
//! trips on injected slowdowns unless a rationale entry waives them.

use esrcg_bench::drills::{
    check_regressions, comparison_table, parse_baselines, rationales, run_all, run_drill,
    DrillOutcome, DRILLS, REGRESSION_THRESHOLD,
};

fn by_name<'a>(outcomes: &'a [DrillOutcome], name: &str) -> &'a DrillOutcome {
    outcomes
        .iter()
        .find(|o| o.name == name)
        .unwrap_or_else(|| panic!("drill {name} missing from the catalog run"))
}

#[test]
fn every_drill_exercises_its_named_recovery_path() {
    let outcomes = run_all(2).expect("catalog runs");
    assert_eq!(outcomes.len(), DRILLS.len());

    for o in &outcomes {
        assert!(
            o.recoveries >= 1,
            "{}: drills must drive a recovery",
            o.name
        );
        assert!(
            o.recovery_modeled_s > 0.0,
            "{}: recovery costs modeled time",
            o.name
        );
    }

    // The pre-recovery-point drill is the only full restart in the catalog.
    for o in &outcomes {
        let expected = usize::from(o.name == "esrp-pre-recovery-point-full-restart");
        assert_eq!(
            o.full_restarts, expected,
            "{}: full restarts misattributed",
            o.name
        );
    }

    // The stochastic pairs replay the same schedule, so the event counts
    // match within each pair; any delta is the tuner's doing.
    for (fixed, auto) in [("exp-fixed-t", "exp-auto"), ("burst-fixed-t", "burst-auto")] {
        let f = by_name(&outcomes, fixed);
        let a = by_name(&outcomes, auto);
        assert_eq!(f.recoveries, a.recoveries, "{fixed} vs {auto}");
        assert!(
            f.recoveries >= 3,
            "{fixed}: the trace must feed the tuner enough failures, got {}",
            f.recoveries
        );
        assert!(
            a.iters_overhead <= f.iters_overhead,
            "{auto}: re-tuning must not redo more work than fixed T \
             ({} vs {})",
            a.iters_overhead,
            f.iters_overhead
        );
    }
}

#[test]
fn artifact_lines_are_byte_identical_across_worker_counts() {
    let render = |outcomes: &[DrillOutcome]| {
        outcomes
            .iter()
            .map(DrillOutcome::artifact_line)
            .collect::<Vec<_>>()
            .join("\n")
    };
    let reference = render(&run_all(1).expect("1 worker"));
    for workers in [4usize, 8] {
        let lines = render(&run_all(workers).expect("catalog runs"));
        assert_eq!(reference, lines, "{workers} workers");
    }
    for name in DRILLS {
        assert!(
            reference.contains(&format!("drill={name} recovery_modeled_s=")),
            "missing artifact line for {name}"
        );
    }
}

#[test]
fn unknown_drills_are_rejected() {
    assert!(run_drill("no-such-drill").unwrap_err().contains("unknown"));
}

#[test]
fn tracked_baselines_match_the_catalog() {
    let md = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/DRILLS.md"))
        .expect("DRILLS.md is tracked");
    let baselines = parse_baselines(&md);
    for name in DRILLS {
        assert!(
            baselines.contains_key(name),
            "DRILLS.md has no baseline row for {name}"
        );
    }
    assert_eq!(
        baselines.len(),
        DRILLS.len(),
        "stale baseline rows for retired drills: {:?}",
        baselines
            .keys()
            .filter(|k| !DRILLS.contains(&k.as_str()))
            .collect::<Vec<_>>()
    );
}

#[test]
fn regression_gate_trips_without_a_rationale_and_waives_with_one() {
    let md = "\
# Drills

| drill | recovery_modeled_s | iters_overhead |
|---|---:|---:|
| esr-single-fail-stop | 0.000100000 | 1 |
| imcr-rollback | 0.000200000 | 4 |

## Rationale

- imcr-rollback: checkpoint spacing rework accepted +30% (2026-08-08)
";
    let mk = |name: &'static str, rec: f64| DrillOutcome {
        name,
        recovery_modeled_s: rec,
        iters_overhead: 1,
        recoveries: 1,
        full_restarts: 0,
    };

    // Within threshold: clean pass.
    let gate = check_regressions(
        md,
        &[mk("esr-single-fail-stop", 0.000110)],
        REGRESSION_THRESHOLD,
    );
    assert!(gate.passed() && gate.waived.is_empty(), "{gate:?}");

    // A 25% regression without a rationale: hard failure.
    let gate = check_regressions(
        md,
        &[mk("esr-single-fail-stop", 0.000125)],
        REGRESSION_THRESHOLD,
    );
    assert!(!gate.passed());
    assert!(
        gate.failures[0].contains("esr-single-fail-stop"),
        "{gate:?}"
    );
    assert!(gate.failures[0].contains("+25.0%"), "{gate:?}");

    // The same size regression on a drill with a rationale entry: waived.
    let gate = check_regressions(md, &[mk("imcr-rollback", 0.000260)], REGRESSION_THRESHOLD);
    assert!(gate.passed(), "{gate:?}");
    assert_eq!(gate.waived.len(), 1);

    // A drill with no baseline row at all: the table must stay current.
    let gate = check_regressions(md, &[mk("esrp-pipelined", 0.0001)], REGRESSION_THRESHOLD);
    assert!(!gate.passed());
    assert!(gate.failures[0].contains("no baseline row"), "{gate:?}");

    // Parsing helpers see exactly what the document says.
    assert_eq!(parse_baselines(md).len(), 2);
    assert!(rationales(md).contains("imcr-rollback"));
    assert!(!rationales(md).contains("esr-single-fail-stop"));

    // The comparison table renders deltas against the parsed baselines.
    let table = comparison_table(md, &[mk("esr-single-fail-stop", 0.000125)]);
    assert!(table.contains("| esr-single-fail-stop | 0.000100000 | 0.000125000 | +25.0 | 1 |"));
}
