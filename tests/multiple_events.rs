//! Multiple *sequential* failure events in one solve — beyond the paper's
//! single-event experiments. Each event's rank count stays within φ; events
//! are separated far enough that the re-executed storage stage / checkpoint
//! round has repopulated the redundant copies.

use esrcg::prelude::*;
use esrcg::sparse::vector::max_abs_diff;

const N_RANKS: usize = 6;

fn matrix() -> MatrixSource {
    MatrixSource::EmiliaLike {
        nx: 6,
        ny: 6,
        nz: 12,
    }
}

fn reference() -> RunReport {
    Experiment::builder()
        .matrix(matrix())
        .n_ranks(N_RANKS)
        .run()
        .expect("reference")
}

#[test]
fn esrp_survives_two_failures() {
    let reference = reference();
    let c = reference.iterations;
    assert!(c > 40, "need room for two events (C = {c})");
    let t = 8;
    let run = Experiment::builder()
        .matrix(matrix())
        .n_ranks(N_RANKS)
        .strategy(Strategy::Esrp { t })
        .phi(2)
        .failure_at(c / 4, 1, 2) // ranks 1, 2 die
        .failure_at(c / 2, 4, 1) // later, rank 4 dies
        .run()
        .expect("two-event run");
    assert!(run.converged);
    assert_eq!(run.recoveries.len(), 2, "both events processed");
    assert_eq!(run.recoveries[0].failed_at, c / 4);
    assert_eq!(run.recoveries[1].failed_at, c / 2);
    assert!(run.recoveries.iter().all(|r| !r.full_restart));
    assert_eq!(
        run.iterations, c,
        "trajectory preserved through both recoveries"
    );
    assert!(max_abs_diff(&run.x, &reference.x) < 1e-5);
}

#[test]
fn esrp_survives_repeated_failure_of_the_same_rank() {
    let reference = reference();
    let c = reference.iterations;
    let t = 8;
    let run = Experiment::builder()
        .matrix(matrix())
        .n_ranks(N_RANKS)
        .strategy(Strategy::Esrp { t })
        .phi(1)
        .failure_at(c / 3, 3, 1)
        .failure_at(2 * c / 3, 3, 1) // the same rank dies again
        .run()
        .expect("repeat-failure run");
    assert!(run.converged);
    assert_eq!(run.recoveries.len(), 2);
    assert_eq!(run.iterations, c);
    assert!(max_abs_diff(&run.x, &reference.x) < 1e-5);
}

#[test]
fn imcr_survives_two_failures_bitwise() {
    let reference = reference();
    let c = reference.iterations;
    let run = Experiment::builder()
        .matrix(matrix())
        .n_ranks(N_RANKS)
        .strategy(Strategy::Imcr { t: 8 })
        .phi(2)
        .failure_at(c / 4, 0, 2)
        .failure_at(c / 2, 3, 2)
        .run()
        .expect("two-event run");
    assert!(run.converged);
    assert_eq!(run.recoveries.len(), 2);
    assert_eq!(run.x, reference.x, "IMCR rollback stays bitwise exact");
}

#[test]
fn imcr_second_failure_right_after_first_recovery() {
    // The second event strikes a few iterations after the first one's
    // rollback target; the re-executed checkpoint round at the rollback
    // iteration must have repopulated the buddy copies.
    let reference = reference();
    let c = reference.iterations;
    let t = 8;
    assert!(3 * t + 4 < c);
    let run = Experiment::builder()
        .matrix(matrix())
        .n_ranks(N_RANKS)
        .strategy(Strategy::Imcr { t })
        .phi(2)
        .failure_at(3 * t + 2, 1, 2)
        .failure_at(3 * t + 4, 2, 2) // overlaps rank 2 with event 1
        .run()
        .expect("back-to-back events");
    assert!(run.converged);
    assert_eq!(run.recoveries.len(), 2);
    assert_eq!(run.x, reference.x);
}

#[test]
fn recovery_overhead_accumulates_over_events() {
    let reference = reference();
    let c = reference.iterations;
    let one = Experiment::builder()
        .matrix(matrix())
        .n_ranks(N_RANKS)
        .strategy(Strategy::Esrp { t: 8 })
        .phi(1)
        .failure_at(c / 2, 0, 1)
        .run()
        .expect("one event");
    let two = Experiment::builder()
        .matrix(matrix())
        .n_ranks(N_RANKS)
        .strategy(Strategy::Esrp { t: 8 })
        .phi(1)
        .failure_at(c / 3, 0, 1)
        .failure_at(2 * c / 3, 2, 1)
        .run()
        .expect("two events");
    let t0 = reference.modeled_time;
    assert!(two.reconstruction_overhead_vs(t0) > one.reconstruction_overhead_vs(t0));
    assert!(two.modeled_time > one.modeled_time);
}

#[test]
fn non_increasing_event_iterations_rejected() {
    let err = Experiment::builder()
        .matrix(matrix())
        .n_ranks(N_RANKS)
        .strategy(Strategy::Esrp { t: 8 })
        .phi(1)
        .failure_at(20, 0, 1)
        .failure_at(20, 2, 1)
        .run()
        .unwrap_err();
    assert!(err.contains("strictly increasing"), "{err}");
}
