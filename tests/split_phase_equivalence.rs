//! The split-phase contract, end to end: the overlapped SpMV schedule must
//! be **bitwise identical** to the blocking baseline — for failure-free
//! runs, for full ESR/ESRP reconstructions and IMCR rollbacks, at every
//! rank count and thread count — while strictly improving the modeled time
//! whenever there is communication to hide.

use esrcg::prelude::*;
use esrcg::sparse::CsrMatrix;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn experiment(n_ranks: usize, mode: SpmvMode, threads: usize) -> Experiment {
    Experiment::builder()
        .matrix(MatrixSource::Poisson2d { nx: 12, ny: 12 })
        .n_ranks(n_ranks)
        .backend(KernelBackend::parallel(threads))
        .spmv_mode(mode)
}

fn assert_same_solve(blocking: &RunReport, split: &RunReport, label: &str) {
    assert!(blocking.converged && split.converged, "{label}");
    assert_eq!(blocking.iterations, split.iterations, "{label}");
    assert_eq!(blocking.total_loop_trips, split.total_loop_trips, "{label}");
    assert_eq!(blocking.x, split.x, "{label}: bitwise identical solution");
    assert_eq!(
        blocking.final_relres.to_bits(),
        split.final_relres.to_bits(),
        "{label}"
    );
    assert_eq!(
        blocking.residual_drift.to_bits(),
        split.residual_drift.to_bits(),
        "{label}"
    );
}

#[test]
fn failure_free_runs_bit_identical_across_ranks_and_threads() {
    for n_ranks in [1usize, 2, 3, 5] {
        let mut reference: Option<RunReport> = None;
        for threads in THREAD_COUNTS {
            let blocking = experiment(n_ranks, SpmvMode::Blocking, threads)
                .run()
                .expect("blocking run");
            let split = experiment(n_ranks, SpmvMode::SplitPhase, threads)
                .run()
                .expect("split run");
            let label = format!("{n_ranks} ranks, {threads} threads");
            assert_same_solve(&blocking, &split, &label);
            // And identical across thread counts too (the PR 1/2 guarantee
            // must compose with the new schedule).
            match &reference {
                None => reference = Some(split),
                Some(r) => assert_eq!(r.x, split.x, "{label} vs 1 thread"),
            }
        }
    }
}

#[test]
fn esr_failure_recovery_bit_identical() {
    // ESR (T = 1): every iteration runs the augmented SpMV with captured
    // redundant copies, and the recovery runs the distributed inner solve —
    // both paths must be schedule-independent.
    let c = experiment(4, SpmvMode::Blocking, 2)
        .run()
        .expect("reference")
        .iterations;
    let run = |mode| {
        experiment(4, mode, 2)
            .strategy(Strategy::esr())
            .phi(2)
            .failure_at(c / 2, 1, 2)
            .run()
            .expect("failure run")
    };
    let blocking = run(SpmvMode::Blocking);
    let split = run(SpmvMode::SplitPhase);
    assert_same_solve(&blocking, &split, "ESR failure run");
    let (b, s) = (
        blocking.recovery.expect("recovered"),
        split.recovery.expect("recovered"),
    );
    assert_eq!(b.failed_at, s.failed_at);
    assert_eq!(b.resumed_at, s.resumed_at);
    assert_eq!(b.wasted_iterations, s.wasted_iterations);
    assert_eq!(b.full_restart, s.full_restart);
    assert_eq!(
        b.inner_iterations, s.inner_iterations,
        "inner solve trajectory is schedule-independent"
    );
}

#[test]
fn esrp_failure_recovery_bit_identical() {
    let c = experiment(5, SpmvMode::Blocking, 1)
        .run()
        .expect("reference")
        .iterations;
    let t = 5;
    let jf = paper_failure_iteration(c, t);
    let run = |mode| {
        experiment(5, mode, 1)
            .strategy(Strategy::Esrp { t })
            .phi(2)
            .failure_at(jf, 2, 2)
            .run()
            .expect("failure run")
    };
    let blocking = run(SpmvMode::Blocking);
    let split = run(SpmvMode::SplitPhase);
    assert_same_solve(&blocking, &split, "ESRP failure run");
    assert_eq!(
        blocking.recovery.expect("recovered").resumed_at,
        split.recovery.expect("recovered").resumed_at
    );
}

#[test]
fn imcr_failure_recovery_bit_identical() {
    let c = experiment(4, SpmvMode::Blocking, 8)
        .run()
        .expect("reference")
        .iterations;
    let run = |mode| {
        experiment(4, mode, 8)
            .strategy(Strategy::Imcr { t: 5 })
            .phi(1)
            .failure_at(c / 2, 0, 1)
            .run()
            .expect("failure run")
    };
    let blocking = run(SpmvMode::Blocking);
    let split = run(SpmvMode::SplitPhase);
    assert_same_solve(&blocking, &split, "IMCR failure run");
    assert_eq!(
        blocking.recovery.expect("recovered").resumed_at,
        split.recovery.expect("recovered").resumed_at
    );
}

#[test]
fn split_phase_improves_modeled_time_at_four_plus_ranks() {
    for n_ranks in [4usize, 8] {
        let blocking = experiment(n_ranks, SpmvMode::Blocking, 1)
            .run()
            .expect("blocking");
        let split = experiment(n_ranks, SpmvMode::SplitPhase, 1)
            .run()
            .expect("split");
        assert_same_solve(&blocking, &split, &format!("{n_ranks} ranks"));
        assert!(
            split.modeled_time < blocking.modeled_time,
            "{n_ranks} ranks: split {} vs blocking {}",
            split.modeled_time,
            blocking.modeled_time
        );
        // The mechanism: halo wait attributed to the SpMV phase shrinks.
        let wait = |r: &RunReport| {
            r.per_rank_stats
                .iter()
                .map(|s| s.recv_wait[Phase::SpMV as usize])
                .sum::<f64>()
        };
        assert!(
            wait(&split) < wait(&blocking),
            "{n_ranks} ranks: SpMV recv wait {} vs {}",
            wait(&split),
            wait(&blocking)
        );
    }
}

#[test]
fn more_ranks_than_rows_solves_under_both_modes() {
    // n < n_ranks: ranks 4..6 own empty ranges; both schedules must agree
    // bit for bit and not deadlock.
    let run = |mode| {
        Experiment::builder()
            .matrix(MatrixSource::Poisson2d { nx: 2, ny: 2 })
            .n_ranks(6)
            .spmv_mode(mode)
            .run()
            .expect("tiny run")
    };
    let blocking = run(SpmvMode::Blocking);
    let split = run(SpmvMode::SplitPhase);
    assert_same_solve(&blocking, &split, "n < n_ranks");
    assert_eq!(split.x.len(), 4);
}

#[test]
fn all_interior_ranks_solve_under_both_modes() {
    // A block-diagonal (here: diagonal) matrix has an empty communication
    // plan: every rank's rows are interior, the split boundary pass is a
    // no-op, and both modes still agree.
    let n = 24;
    let diag = CsrMatrix::from_dense(
        n,
        n,
        &(0..n * n)
            .map(|k| {
                if k % (n + 1) == 0 {
                    2.0 + (k / (n + 1)) as f64 * 0.1
                } else {
                    0.0
                }
            })
            .collect::<Vec<f64>>(),
    );
    let run = |mode| {
        Experiment::builder()
            .matrix(MatrixSource::Custom(diag.clone()))
            .rhs(RhsSpec::Ones)
            .n_ranks(4)
            .spmv_mode(mode)
            .run()
            .expect("diagonal run")
    };
    let blocking = run(SpmvMode::Blocking);
    let split = run(SpmvMode::SplitPhase);
    assert_same_solve(&blocking, &split, "all-interior ranks");
    // No communication to hide: the schedules are not just bitwise equal
    // but cost-identical.
    assert_eq!(
        blocking.modeled_time.to_bits(),
        split.modeled_time.to_bits(),
        "empty plan: overlap changes nothing"
    );
}
